//! The benchmark matrix: every workload × scale × backend, one normalized
//! record per cell.
//!
//! A cell carries the quantities every backend can be compared on — a
//! modeled kernel time (`kernel_ns`), the self-measured wall time of
//! producing the cell (`wall_ns`), and, where the backend's model defines
//! them, cycles, effective bandwidth, energy per arithmetic operation and
//! the roofline position (arithmetic intensity vs. the backend's ridge
//! point). The normalization rules:
//!
//! * **cycle engines** (`skip_ahead`, `legacy`, `analytic`, `ponb`) run at
//!   1 GHz, so `kernel_ns` = simulated cycles, `gbps` =
//!   [`ExecutionReport::dram_bandwidth_gbs`] (bytes/cycle ≡ GB/s), and
//!   `pj_per_op` divides the composed [`EnergyBook`] total by the
//!   workload's arithmetic op count (`flops_per_pixel × output_pixels`).
//! * **`gpu`** is the calibrated V100 roofline: `kernel_ns` = modeled
//!   seconds × 1e9, energy = seconds × board power, same op count.
//! * **`cpu_ref`** is the golden interpreter — a correctness oracle with
//!   no machine model, so its only number is the measured wall time.
//!
//! Unmappable cells (a workload whose schedule does not compile at a
//! scale, or a simulation that exhausts its cycle budget) are *loud
//! skips*: the runner records why and moves on, never panicking and never
//! silently shrinking the matrix.
//!
//! The file format is schema-versioned JSONL (see [`SCHEMA_VERSION`]): one
//! `"kind":"cell"` line per cell plus one `"kind":"anchor"` line carrying
//! this machine's `fig01_gpu_profile` timing, the same machine-speed
//! normalizer `bench_regress` uses — so a matrix file is self-contained
//! for cross-machine wall-clock comparison.

use std::time::Instant;

use ipim_core::baselines::{gpu_profile, run_gpu, GpuModel};
use ipim_core::experiments::fig1;
use ipim_core::trace::json;
use ipim_core::{all_workloads, Engine, Placement, Workload, WorkloadScale};
use ipim_serve::{fnv1a, PoolConfig, ServePool, SimRequest, SimResponse};

/// Version of the `matrix.jsonl` line schema. Any change to the cell
/// field set bumps this, and `bench_regress --matrix` refuses to compare
/// files whose versions differ.
pub const SCHEMA_VERSION: u64 = 1;

/// The machine-speed anchor entry's name (shared with `bench_regress`).
pub const ANCHOR_NAME: &str = "fig01_gpu_profile";

/// One comparison backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The skip-ahead cycle engine (the default iPIM simulator).
    SkipAhead,
    /// The legacy per-cycle engine (bit-identical, slower host time).
    Legacy,
    /// The analytic prediction tier (`fidelity: approximate`).
    Analytic,
    /// Process-on-base-die: skip-ahead engine, `Placement::BaseDie`
    /// (Sec. VII-C1 — all bank traffic crosses the vault TSV bundle).
    Ponb,
    /// The calibrated V100 roofline model (Sec. III / Fig. 1).
    Gpu,
    /// The golden CPU reference interpreter (correctness oracle).
    CpuRef,
}

impl Backend {
    /// Every backend, in canonical matrix-column order.
    pub const ALL: [Backend; 6] = [
        Backend::SkipAhead,
        Backend::Legacy,
        Backend::Analytic,
        Backend::Ponb,
        Backend::Gpu,
        Backend::CpuRef,
    ];

    /// Canonical wire/report spelling.
    pub fn name(self) -> &'static str {
        match self {
            Backend::SkipAhead => "skip_ahead",
            Backend::Legacy => "legacy",
            Backend::Analytic => "analytic",
            Backend::Ponb => "ponb",
            Backend::Gpu => "gpu",
            Backend::CpuRef => "cpu_ref",
        }
    }

    /// Parses [`name`](Self::name)'s spelling.
    ///
    /// # Errors
    ///
    /// Returns a message listing the accepted spellings.
    pub fn parse(s: &str) -> Result<Self, String> {
        Backend::ALL.into_iter().find(|b| b.name() == s).ok_or_else(|| {
            format!("unknown backend {s:?} (skip_ahead | legacy | analytic | ponb | gpu | cpu_ref)")
        })
    }

    /// The simulated engine + placement this backend selects, or `None`
    /// for the modeled/interpreted backends.
    pub fn engine_placement(self) -> Option<(Engine, Placement)> {
        match self {
            Backend::SkipAhead => Some((Engine::SkipAhead, Placement::NearBank)),
            Backend::Legacy => Some((Engine::Legacy, Placement::NearBank)),
            Backend::Analytic => Some((Engine::Analytic, Placement::NearBank)),
            Backend::Ponb => Some((Engine::SkipAhead, Placement::BaseDie)),
            Backend::Gpu | Backend::CpuRef => None,
        }
    }
}

/// Which roof a cell sits under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Bandwidth-limited (arithmetic intensity below the ridge point).
    Memory,
    /// Compute-limited.
    Compute,
    /// The backend has no roofline model (`cpu_ref`).
    NotApplicable,
}

impl Bound {
    /// Canonical wire spelling.
    pub fn name(self) -> &'static str {
        match self {
            Bound::Memory => "memory",
            Bound::Compute => "compute",
            Bound::NotApplicable => "n/a",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "memory" => Ok(Bound::Memory),
            "compute" => Ok(Bound::Compute),
            "n/a" => Ok(Bound::NotApplicable),
            other => Err(format!("unknown bound {other:?} (memory | compute | n/a)")),
        }
    }
}

/// One normalized matrix record.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCell {
    /// Workload name as the suite spells it.
    pub workload: String,
    /// Workload family (`image` | `nn` | `video`).
    pub family: String,
    /// Square image side in pixels (the ladder runs 32/64/128).
    pub scale: u32,
    /// The backend that produced this cell.
    pub backend: Backend,
    /// Simulated cycles (cycle engines only).
    pub cycles: Option<u64>,
    /// Modeled kernel time in nanoseconds — cycles at 1 GHz for the cycle
    /// engines, roofline seconds for the GPU, measured wall for `cpu_ref`.
    pub kernel_ns: f64,
    /// Wall-clock nanoseconds this cell took to produce on this machine
    /// (the number the drift gate normalizes by the anchor).
    pub wall_ns: u64,
    /// Effective DRAM bandwidth in GB/s (backends with a memory model).
    pub gbps: Option<f64>,
    /// Energy per arithmetic operation in picojoules.
    pub pj_per_op: Option<f64>,
    /// Arithmetic intensity in FLOP/byte of modeled DRAM traffic.
    pub ai: Option<f64>,
    /// The backend's peak bandwidth roof in GB/s.
    pub peak_gbps: Option<f64>,
    /// Roofline verdict at this cell's arithmetic intensity.
    pub bound: Bound,
}

impl MatrixCell {
    /// Canonical textual identity of the cell's *coordinates* (not its
    /// measurements): what the drift gate joins baseline and fresh rows
    /// on. Independent of the order backends were enumerated in — the key
    /// is built from the cell's own fields only.
    pub fn canonical_key(&self) -> String {
        format!(
            "workload={};scale={};backend={}",
            self.workload.to_ascii_lowercase(),
            self.scale,
            self.backend.name()
        )
    }

    /// 64-bit FNV-1a of [`canonical_key`](Self::canonical_key).
    pub fn fingerprint(&self) -> u64 {
        fnv1a(self.canonical_key().as_bytes())
    }

    /// Renders the cell as one schema-versioned JSONL line. `None` fields
    /// are omitted (the same invisible-optional convention `SimRequest`
    /// uses); f64 fields print in shortest-round-trip form so a parse of
    /// the line reproduces the cell bit-exactly.
    pub fn to_json_line(&self) -> String {
        let opt_u = |k: &str, v: Option<u64>| v.map_or(String::new(), |v| format!(",\"{k}\":{v}"));
        let opt_f = |k: &str, v: Option<f64>| {
            v.map_or(String::new(), |v| {
                assert!(v.is_finite(), "non-finite {k} would corrupt the wire: {v}");
                format!(",\"{k}\":{v:?}")
            })
        };
        assert!(self.kernel_ns.is_finite(), "non-finite kernel_ns: {}", self.kernel_ns);
        format!(
            "{{\"schema\":{SCHEMA_VERSION},\"kind\":\"cell\",\"workload\":\"{}\",\
             \"family\":\"{}\",\"scale\":{},\"backend\":\"{}\"{}{}{}{}{},\
             \"kernel_ns\":{:?},\"wall_ns\":{},\"bound\":\"{}\"}}",
            self.workload,
            self.family,
            self.scale,
            self.backend.name(),
            opt_u("cycles", self.cycles),
            opt_f("gbps", self.gbps),
            opt_f("pj_per_op", self.pj_per_op),
            opt_f("ai", self.ai),
            opt_f("peak_gbps", self.peak_gbps),
            self.kernel_ns,
            self.wall_ns,
            self.bound.name(),
        )
    }

    /// Parses one `"kind":"cell"` JSON object.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn from_json(v: &json::Value) -> Result<Self, String> {
        let req_str = |k: &str| {
            v.get(k)
                .and_then(json::Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("cell needs a string {k:?} field"))
        };
        let req_f64 = |k: &str| {
            v.get(k)
                .and_then(json::Value::as_f64)
                .ok_or_else(|| format!("cell needs a numeric {k:?} field"))
        };
        let opt_f64 = |k: &str| v.get(k).and_then(json::Value::as_f64);
        Ok(MatrixCell {
            workload: req_str("workload")?,
            family: req_str("family")?,
            scale: req_f64("scale")? as u32,
            backend: Backend::parse(&req_str("backend")?)?,
            cycles: opt_f64("cycles").map(|c| c as u64),
            kernel_ns: req_f64("kernel_ns")?,
            wall_ns: req_f64("wall_ns")? as u64,
            gbps: opt_f64("gbps"),
            pj_per_op: opt_f64("pj_per_op"),
            ai: opt_f64("ai"),
            peak_gbps: opt_f64("peak_gbps"),
            bound: Bound::parse(&req_str("bound")?)?,
        })
    }
}

/// The machine-speed anchor recorded alongside the cells.
#[derive(Debug, Clone, PartialEq)]
pub struct Anchor {
    /// Anchor kernel name (always [`ANCHOR_NAME`] today).
    pub name: String,
    /// Its minimum wall time on the recording machine.
    pub min_ns: u64,
}

impl Anchor {
    /// Renders the anchor as one schema-versioned JSONL line.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"schema\":{SCHEMA_VERSION},\"kind\":\"anchor\",\"name\":\"{}\",\"min_ns\":{}}}",
            self.name, self.min_ns
        )
    }
}

/// A parsed `matrix.jsonl`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MatrixFile {
    /// Every cell, in file order.
    pub cells: Vec<MatrixCell>,
    /// Every anchor, in file order.
    pub anchors: Vec<Anchor>,
}

impl MatrixFile {
    /// The anchor's `min_ns`, when recorded.
    pub fn anchor_ns(&self) -> Option<u64> {
        self.anchors.iter().find(|a| a.name == ANCHOR_NAME).map(|a| a.min_ns)
    }

    /// Renders the whole file (anchors first, then cells, in order).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for a in &self.anchors {
            out.push_str(&a.to_json_line());
            out.push('\n');
        }
        for c in &self.cells {
            out.push_str(&c.to_json_line());
            out.push('\n');
        }
        out
    }
}

/// Parses a `matrix.jsonl` text. Enforces the schema version on every
/// line — a mismatch is an error, never a silent partial parse.
///
/// # Errors
///
/// Returns a message with the offending line number for malformed JSON,
/// unknown `kind`s, or a schema-version mismatch.
pub fn parse_matrix(text: &str) -> Result<MatrixFile, String> {
    let mut out = MatrixFile::default();
    for (i, line) in text.lines().enumerate() {
        let at = |msg: String| format!("matrix line {}: {msg}", i + 1);
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| at(format!("bad JSON: {e}")))?;
        let schema = v
            .get("schema")
            .and_then(json::Value::as_f64)
            .ok_or_else(|| at("missing schema field".into()))? as u64;
        if schema != SCHEMA_VERSION {
            return Err(at(format!(
                "schema version {schema} does not match this binary's {SCHEMA_VERSION} — \
                 re-record the matrix"
            )));
        }
        match v.get("kind").and_then(json::Value::as_str) {
            Some("cell") => out.cells.push(MatrixCell::from_json(&v).map_err(at)?),
            Some("anchor") => out.anchors.push(Anchor {
                name: v
                    .get("name")
                    .and_then(json::Value::as_str)
                    .ok_or_else(|| at("anchor needs a name".into()))?
                    .to_string(),
                min_ns: v
                    .get("min_ns")
                    .and_then(json::Value::as_f64)
                    .ok_or_else(|| at("anchor needs min_ns".into()))?
                    as u64,
            }),
            other => return Err(at(format!("unknown kind {other:?} (cell | anchor)"))),
        }
    }
    Ok(out)
}

/// Reads and parses a `matrix.jsonl` file from disk.
///
/// # Errors
///
/// Returns a message for I/O or parse failures.
pub fn read_matrix(path: &std::path::Path) -> Result<MatrixFile, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_matrix(&text)
}

// --------------------------------------------------------------------
// Cell constructors: the normalization rules, as pure testable code.
// --------------------------------------------------------------------

/// Arithmetic operations a workload performs (the `pJ/op` denominator).
pub fn arith_ops(w: &Workload) -> f64 {
    w.flops_per_pixel * w.output_pixels as f64
}

impl MatrixCell {
    /// Builds a cycle-engine cell from a completed simulation. One GHz
    /// clock: cycles ≡ nanoseconds, bytes/cycle ≡ GB/s. The ridge point
    /// is the machine's peak SIMD throughput (`total_pes × 4` lanes at
    /// 1 GHz) over its peak bank bandwidth.
    pub fn from_engine_run(
        w: &Workload,
        backend: Backend,
        report: &ipim_core::ExecutionReport,
        energy_pj: f64,
        wall_ns: u64,
    ) -> MatrixCell {
        let (_, placement) = backend.engine_placement().expect("cycle backend");
        let config = ipim_core::MachineConfig {
            placement,
            ..ipim_core::MachineConfig::vault_slice(report.vaults)
        };
        let peak_bytes_per_cycle = config.peak_bank_bytes_per_cycle() as f64;
        let peak_flops = (config.total_pes() * 4) as f64; // per cycle
        let ops = arith_ops(w);
        let bytes = report.dram_bytes() as f64;
        let ai = if bytes > 0.0 { ops / bytes } else { 0.0 };
        let ridge = peak_flops / peak_bytes_per_cycle;
        MatrixCell {
            workload: w.name.to_string(),
            family: w.family.name().to_string(),
            scale: w.scale.width,
            backend,
            cycles: Some(report.cycles),
            kernel_ns: report.cycles as f64,
            wall_ns,
            gbps: Some(report.dram_bandwidth_gbs()),
            // Pure data-movement workloads (Shift) perform zero arithmetic:
            // pJ/op has no denominator there, so the field goes absent
            // rather than emitting a non-JSON `inf` on the wire.
            pj_per_op: (ops > 0.0).then(|| energy_pj / ops),
            ai: Some(ai),
            peak_gbps: Some(peak_bytes_per_cycle),
            bound: if ai < ridge { Bound::Memory } else { Bound::Compute },
        }
    }

    /// Builds the GPU cell from the V100 roofline model.
    pub fn from_gpu(w: &Workload, wall_ns: u64) -> MatrixCell {
        let model = GpuModel::default();
        let profile = gpu_profile(w.name);
        let r = run_gpu(&model, w);
        let ops = arith_ops(w);
        // Memory-bound exactly when the bandwidth term won the max() in
        // the model: achieved bandwidth then equals the profiled roof.
        let roof = model.peak_bw * profile.dram_util;
        let memory_bound = (r.achieved_bw - roof).abs() <= roof * 1e-9;
        MatrixCell {
            workload: w.name.to_string(),
            family: w.family.name().to_string(),
            scale: w.scale.width,
            backend: Backend::Gpu,
            cycles: None,
            kernel_ns: r.seconds * 1e9,
            wall_ns,
            gbps: Some(r.achieved_bw / 1e9),
            pj_per_op: (ops > 0.0).then(|| r.energy_j * 1e12 / ops),
            ai: Some(w.flops_per_pixel / w.gpu_bytes_per_pixel),
            peak_gbps: Some(model.peak_bw / 1e9),
            bound: if memory_bound { Bound::Memory } else { Bound::Compute },
        }
    }

    /// Builds the golden-interpreter cell: a correctness oracle with no
    /// machine model, so wall time is its only measurement.
    pub fn from_cpu_ref(w: &Workload, wall_ns: u64) -> MatrixCell {
        MatrixCell {
            workload: w.name.to_string(),
            family: w.family.name().to_string(),
            scale: w.scale.width,
            backend: Backend::CpuRef,
            cycles: None,
            kernel_ns: wall_ns as f64,
            wall_ns,
            gbps: None,
            pj_per_op: None,
            ai: None,
            peak_gbps: None,
            bound: Bound::NotApplicable,
        }
    }
}

// --------------------------------------------------------------------
// The runner.
// --------------------------------------------------------------------

/// What to run.
#[derive(Debug, Clone)]
pub struct MatrixPlan {
    /// Workload names (case-insensitive); empty = the full suite.
    pub workloads: Vec<String>,
    /// Square image sides.
    pub scales: Vec<u32>,
    /// Backends to run.
    pub backends: Vec<Backend>,
    /// Serve-pool workers. With 1 (the default) each cycle cell's
    /// `wall_ns` is an uncontended submit→reply round trip; more workers
    /// fan a workload×scale's cycle cells out concurrently, trading
    /// wall-clock fidelity for throughput.
    pub workers: usize,
    /// Cycle budget per simulation.
    pub max_cycles: u64,
}

impl Default for MatrixPlan {
    fn default() -> Self {
        Self {
            workloads: Vec::new(),
            scales: vec![32, 64, 128],
            backends: Backend::ALL.to_vec(),
            workers: 1,
            max_cycles: 4_000_000_000,
        }
    }
}

/// A completed matrix run.
#[derive(Debug, Clone, Default)]
pub struct MatrixRun {
    /// The produced cells, in canonical (workload, scale, backend) order.
    pub cells: Vec<MatrixCell>,
    /// The machine-speed anchors.
    pub anchors: Vec<Anchor>,
    /// Human-readable loud-skip notes for every unproduced cell.
    pub skips: Vec<String>,
}

impl MatrixRun {
    /// The run as a [`MatrixFile`] (what gets written to disk).
    pub fn to_file(&self) -> MatrixFile {
        MatrixFile { cells: self.cells.clone(), anchors: self.anchors.clone() }
    }
}

/// Minimum wall-clock of `iters` calls after `warmup` discarded calls —
/// the same estimator `bench_regress` uses for the anchor.
fn min_ns_of<R>(warmup: u32, iters: u32, mut f: impl FnMut() -> R) -> u64 {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut min = u64::MAX;
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        min = min.min(start.elapsed().as_nanos() as u64);
    }
    min
}

/// Measures the machine-speed anchor (same kernel and estimator as
/// `bench_regress`'s fresh measurement).
pub fn measure_anchor() -> Anchor {
    Anchor { name: ANCHOR_NAME.to_string(), min_ns: min_ns_of(3, 10, fig1) }
}

/// Runs the plan: every selected workload × scale × backend, fanned
/// across a [`ServePool`] for the cycle engines, with the GPU roofline
/// and the golden interpreter evaluated inline. Compiles each
/// workload×scale once up front (the global `ProgramCache` then serves
/// every cycle backend, whose program key excludes engine and placement).
pub fn run_matrix(plan: &MatrixPlan) -> MatrixRun {
    let mut run = MatrixRun { anchors: vec![measure_anchor()], ..MatrixRun::default() };
    let pool = ServePool::start(&PoolConfig {
        workers: plan.workers.max(1),
        queue_depth: Backend::ALL.len() * 2,
        cache_capacity: 0, // every cell is unique; no memoization wanted
    });
    let wanted = |name: &str| {
        plan.workloads.is_empty() || plan.workloads.iter().any(|w| w.eq_ignore_ascii_case(name))
    };
    let mut scales = plan.scales.clone();
    scales.sort_unstable();
    scales.dedup();
    // Workload-major, then scale, then canonical backend order — the
    // deterministic cell order the renderer and gate expect.
    for w in all_workloads(WorkloadScale::default()) {
        if !wanted(w.name) {
            continue;
        }
        for &scale in &scales {
            let ws = WorkloadScale { width: scale, height: scale };
            let w = match ipim_core::workload_by_name(w.name, ws) {
                Some(w) => w,
                None => unreachable!("suite workload renamed mid-run"),
            };
            run_cells(&mut run, &pool, plan, &w);
        }
    }
    pool.shutdown();
    run
}

/// Runs one workload×scale row: cold-compiles once, then produces a cell
/// (or a loud skip) per selected backend.
fn run_cells(run: &mut MatrixRun, pool: &ServePool, plan: &MatrixPlan, w: &Workload) {
    let scale = w.scale.width;
    let base = SimRequest {
        max_cycles: plan.max_cycles,
        ..SimRequest::named(w.name, w.scale.width, w.scale.height)
    };
    // One cold compile per workload×scale. The program key excludes the
    // engine and the placement, so this single lowering serves SkipAhead,
    // Legacy, Analytic and Ponb alike; a compile failure here means the
    // schedule does not map at this scale, which loud-skips every cycle
    // backend (the GPU model and the interpreter still produce cells).
    let cycle_backends: Vec<Backend> =
        plan.backends.iter().copied().filter(|b| b.engine_placement().is_some()).collect();
    let compiled = if cycle_backends.is_empty() {
        Ok(())
    } else {
        base.instantiate()
            .and_then(|(session, w)| session.compile(&w.pipeline).map_err(|e| e.to_string()))
            .map(|_| ())
    };
    match compiled {
        Ok(()) => {
            // Fan the row's cycle cells across the pool: submit every
            // ticket, then collect in canonical order. Each cell's wall
            // clock starts at its own submit — with one worker that is an
            // uncontended round trip.
            let tickets: Vec<_> = cycle_backends
                .iter()
                .map(|&b| {
                    let (engine, placement) = b.engine_placement().expect("cycle backend");
                    let req = SimRequest { engine, placement, ..base.clone() };
                    (b, Instant::now(), pool.submit(req))
                })
                .collect();
            for (b, submitted, ticket) in tickets {
                let response = ticket.wait();
                let wall_ns = submitted.elapsed().as_nanos() as u64;
                match response {
                    SimResponse::Done(d) => run.cells.push(MatrixCell::from_engine_run(
                        w,
                        b,
                        &d.report,
                        d.energy_pj,
                        wall_ns,
                    )),
                    SimResponse::Timeout(t) => run.skips.push(format!(
                        "skip: {}/{scale}/{}: cycle budget exhausted ({t:?})",
                        w.name,
                        b.name()
                    )),
                    SimResponse::Error(e) => {
                        run.skips.push(format!("skip: {}/{scale}/{}: {e}", w.name, b.name()))
                    }
                }
            }
        }
        Err(e) => {
            for b in &cycle_backends {
                run.skips.push(format!(
                    "skip: {}/{scale}/{}: does not map at this scale ({e})",
                    w.name,
                    b.name()
                ));
            }
        }
    }
    if plan.backends.contains(&Backend::Gpu) {
        let start = Instant::now();
        std::hint::black_box(run_gpu(&GpuModel::default(), w));
        run.cells.push(MatrixCell::from_gpu(w, start.elapsed().as_nanos() as u64));
    }
    if plan.backends.contains(&Backend::CpuRef) {
        let images: Vec<_> = w.inputs.iter().map(|(_, img)| img.clone()).collect();
        let start = Instant::now();
        let out = ipim_core::frontend::interpret(&w.pipeline, &images);
        let wall_ns = start.elapsed().as_nanos() as u64;
        match out {
            Ok(_) => run.cells.push(MatrixCell::from_cpu_ref(w, wall_ns)),
            Err(e) => run.skips.push(format!("skip: {}/{scale}/cpu_ref: {e}", w.name)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cell() -> MatrixCell {
        MatrixCell {
            workload: "Blur".into(),
            family: "image".into(),
            scale: 64,
            backend: Backend::SkipAhead,
            cycles: Some(3768),
            kernel_ns: 3768.0,
            wall_ns: 1_234_567,
            gbps: Some(12.25),
            pj_per_op: Some(33.7),
            ai: Some(0.625),
            peak_gbps: Some(512.0),
            bound: Bound::Compute,
        }
    }

    #[test]
    fn backend_names_round_trip() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.name()).unwrap(), b);
        }
        assert!(Backend::parse("abacus").is_err());
    }

    #[test]
    fn cell_json_round_trips_bit_exactly() {
        for cell in [
            sample_cell(),
            MatrixCell {
                cycles: None,
                gbps: None,
                pj_per_op: None,
                ai: None,
                peak_gbps: None,
                bound: Bound::NotApplicable,
                backend: Backend::CpuRef,
                ..sample_cell()
            },
        ] {
            let line = cell.to_json_line();
            let back = MatrixCell::from_json(&json::parse(&line).unwrap()).unwrap();
            assert_eq!(cell, back, "{line}");
        }
    }

    #[test]
    fn matrix_file_round_trips_and_checks_schema() {
        let file = MatrixFile {
            cells: vec![sample_cell()],
            anchors: vec![Anchor { name: ANCHOR_NAME.into(), min_ns: 42 }],
        };
        let text = file.to_jsonl();
        let back = parse_matrix(&text).unwrap();
        assert_eq!(file, back);
        assert_eq!(back.anchor_ns(), Some(42));

        let drifted = text.replace("\"schema\":1", "\"schema\":2");
        let err = parse_matrix(&drifted).unwrap_err();
        assert!(err.contains("schema version 2"), "{err}");
        assert!(parse_matrix("{\"kind\":\"cell\"}").is_err(), "missing schema must fail");
    }

    #[test]
    fn fingerprint_ignores_measurements() {
        let a = sample_cell();
        let mut b = sample_cell();
        b.wall_ns = 999;
        b.cycles = Some(1);
        b.kernel_ns = 1.0;
        assert_eq!(a.fingerprint(), b.fingerprint(), "coordinates only");
        let mut c = sample_cell();
        c.backend = Backend::Legacy;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn smoke_matrix_produces_all_backends() {
        // Histogram maps at 32² (the only Table II kernel that does, with
        // StencilChain); every backend must produce a cell.
        let plan = MatrixPlan {
            workloads: vec!["Histogram".into()],
            scales: vec![32],
            ..MatrixPlan::default()
        };
        let run = run_matrix(&plan);
        assert_eq!(run.skips, Vec::<String>::new());
        let backends: Vec<_> = run.cells.iter().map(|c| c.backend).collect();
        assert_eq!(backends, Backend::ALL.to_vec(), "canonical order");
        assert_eq!(run.to_file().anchor_ns().map(|n| n > 0), Some(true));
        // PonB serializes bank traffic on the TSVs: strictly more cycles.
        let cycles =
            |b: Backend| run.cells.iter().find(|c| c.backend == b).unwrap().cycles.unwrap();
        assert!(cycles(Backend::Ponb) > cycles(Backend::SkipAhead));
        // Legacy and skip-ahead are bit-identical in simulated time.
        assert_eq!(cycles(Backend::Legacy), cycles(Backend::SkipAhead));
    }

    #[test]
    fn unmappable_cells_loud_skip_not_panic() {
        // Blur's hand schedule does not map at 32²: the cycle backends
        // skip loudly, the GPU model and interpreter still report.
        let plan = MatrixPlan {
            workloads: vec!["Blur".into()],
            scales: vec![32],
            ..MatrixPlan::default()
        };
        let run = run_matrix(&plan);
        assert_eq!(run.skips.len(), 4, "{:?}", run.skips);
        assert!(run.skips.iter().all(|s| s.contains("does not map")), "{:?}", run.skips);
        let backends: Vec<_> = run.cells.iter().map(|c| c.backend).collect();
        assert_eq!(backends, vec![Backend::Gpu, Backend::CpuRef]);
    }
}
