//! The trajectory report renderer: folds the repo's four JSONL result
//! streams into one deterministic `results/REPORT.md`.
//!
//! Inputs (all optional — a missing stream is a *loud skip*: the report
//! names it and renders the remaining sections):
//!
//! * `matrix.jsonl` — the benchmark matrix ([`crate::matrix`]).
//! * `figures.jsonl` — the recorded bench baselines, including the
//!   `analytic/divergence/*` calibration entries.
//! * `serve_fresh.jsonl` — serve/shard throughput soaks.
//! * `tuning.jsonl` — autotuner `tune_eval`/`tune_best` records.
//!
//! Determinism contract: the rendered bytes are a pure function of the
//! parsed stream *contents* — input line order never matters (every
//! section sorts by explicit keys), floats print with fixed precision,
//! and nothing timestamps the output. `render` on the same inputs is
//! byte-identical forever, which is what lets CI `cmp` a fresh rendering
//! against the committed `REPORT.md`.

use std::path::Path;

use ipim_core::trace::json;
use ipim_core::{all_workloads, WorkloadScale};

use crate::matrix::{read_matrix, Backend, MatrixCell};

/// One parsed line of `figures.jsonl` / `serve_fresh.jsonl` (the fields
/// the report uses; everything else is ignored).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FigLine {
    /// Entry name (e.g. `analytic/divergence/Blur`).
    pub name: String,
    /// Minimum (serve: p50) wall nanoseconds.
    pub min_ns: Option<f64>,
    /// Analytic-vs-skip-ahead divergence (divergence entries only).
    pub divergence_pct: Option<f64>,
    /// Image side (divergence entries only).
    pub scale: Option<u64>,
    /// Requests per second (throughput entries only).
    pub throughput_rps: Option<f64>,
    /// p99 latency (throughput entries only).
    pub p99_ns: Option<f64>,
    /// Core count the entry was recorded on.
    pub cores: Option<u64>,
    /// Workload mix label.
    pub mix: Option<String>,
    /// Transport: `inproc` | `stream` | `shard`.
    pub transport: Option<String>,
}

/// One parsed `tune_best` line of `tuning.jsonl`.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneBest {
    /// Tuned workload.
    pub workload: String,
    /// Image width/height.
    pub width: u64,
    /// Image height.
    pub height: u64,
    /// Search strategy label.
    pub strategy: String,
    /// RNG seed.
    pub seed: u64,
    /// Winning candidate's canonical schedule key.
    pub best_candidate: String,
    /// Winning candidate's cycles.
    pub best_cycles: u64,
    /// Hand-schedule cycles (when the default completed).
    pub default_cycles: Option<u64>,
    /// Speedup over the hand schedule.
    pub speedup: f64,
}

/// One tuner evaluation-count row: `(workload, strategy, seed, evals)`.
pub type TuneEvalCount = (String, String, u64, u64);

/// Everything the renderer folds, plus the loud-skip notes for streams
/// that were missing on disk.
#[derive(Debug, Clone, Default)]
pub struct Streams {
    /// The benchmark matrix cells.
    pub cells: Vec<MatrixCell>,
    /// `figures.jsonl` entries.
    pub figures: Vec<FigLine>,
    /// `serve_fresh.jsonl` entries.
    pub serve: Vec<FigLine>,
    /// `tuning.jsonl` `tune_best` entries.
    pub tuning: Vec<TuneBest>,
    /// Evaluation-line count per (workload, strategy, seed) leaderboard row.
    pub tune_evals: Vec<TuneEvalCount>,
    /// Names of streams that were missing (rendered as loud skips).
    pub missing: Vec<String>,
}

fn parse_fig_line(v: &json::Value) -> Option<FigLine> {
    Some(FigLine {
        name: v.get("name")?.as_str()?.to_string(),
        min_ns: v.get("min_ns").and_then(json::Value::as_f64),
        divergence_pct: v.get("divergence_pct").and_then(json::Value::as_f64),
        scale: v.get("scale").and_then(json::Value::as_f64).map(|s| s as u64),
        throughput_rps: v.get("throughput_rps").and_then(json::Value::as_f64),
        p99_ns: v.get("p99_ns").and_then(json::Value::as_f64),
        cores: v.get("cores").and_then(json::Value::as_f64).map(|c| c as u64),
        mix: v.get("mix").and_then(json::Value::as_str).map(str::to_string),
        transport: v.get("transport").and_then(json::Value::as_str).map(str::to_string),
    })
}

fn parse_fig_file(text: &str, path: &str) -> Result<Vec<FigLine>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("{path}:{}: bad JSON: {e}", i + 1))?;
        if let Some(f) = parse_fig_line(&v) {
            out.push(f);
        }
    }
    Ok(out)
}

/// Parses `tuning.jsonl` into the leaderboard rows + eval counts.
fn parse_tuning(text: &str, path: &str) -> Result<(Vec<TuneBest>, Vec<TuneEvalCount>), String> {
    let mut best = Vec::new();
    let mut evals: Vec<TuneEvalCount> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let at = |msg: String| format!("{path}:{}: {msg}", i + 1);
        let v = json::parse(line).map_err(|e| at(format!("bad JSON: {e}")))?;
        let str_of = |k: &str| v.get(k).and_then(json::Value::as_str).map(str::to_string);
        let num_of = |k: &str| v.get(k).and_then(json::Value::as_f64);
        match v.get("kind").and_then(json::Value::as_str) {
            Some("tune_eval") => {
                let key = (
                    str_of("workload").ok_or_else(|| at("tune_eval needs workload".into()))?,
                    str_of("strategy").unwrap_or_default(),
                    num_of("seed").unwrap_or(0.0) as u64,
                );
                match evals.iter_mut().find(|(w, s, d, _)| (w, s, d) == (&key.0, &key.1, &key.2)) {
                    Some(row) => row.3 += 1,
                    None => evals.push((key.0, key.1, key.2, 1)),
                }
            }
            Some("tune_best") => best.push(TuneBest {
                workload: str_of("workload")
                    .ok_or_else(|| at("tune_best needs workload".into()))?,
                width: num_of("width").unwrap_or(0.0) as u64,
                height: num_of("height").unwrap_or(0.0) as u64,
                strategy: str_of("strategy").unwrap_or_default(),
                seed: num_of("seed").unwrap_or(0.0) as u64,
                best_candidate: str_of("best_candidate").unwrap_or_default(),
                best_cycles: num_of("best_cycles").unwrap_or(0.0) as u64,
                default_cycles: num_of("default_cycles").map(|c| c as u64),
                speedup: num_of("speedup").unwrap_or(0.0),
            }),
            // Unknown kinds are future extensions, not errors.
            _ => {}
        }
    }
    Ok((best, evals))
}

impl Streams {
    /// Loads every stream from `dir`, recording missing files as loud
    /// skips instead of failing.
    ///
    /// # Errors
    ///
    /// Returns a message only for files that exist but do not parse —
    /// a present-but-corrupt stream is a bug, not a gap.
    pub fn load(dir: &Path) -> Result<Streams, String> {
        let mut s = Streams::default();
        let read = |name: &str| -> Option<String> { std::fs::read_to_string(dir.join(name)).ok() };
        match read("matrix.jsonl") {
            Some(_) => s.cells = read_matrix(&dir.join("matrix.jsonl"))?.cells,
            None => s.missing.push("matrix.jsonl".into()),
        }
        match read("figures.jsonl") {
            Some(text) => s.figures = parse_fig_file(&text, "figures.jsonl")?,
            None => s.missing.push("figures.jsonl".into()),
        }
        match read("serve_fresh.jsonl") {
            Some(text) => s.serve = parse_fig_file(&text, "serve_fresh.jsonl")?,
            None => s.missing.push("serve_fresh.jsonl".into()),
        }
        match read("tuning.jsonl") {
            Some(text) => (s.tuning, s.tune_evals) = parse_tuning(&text, "tuning.jsonl")?,
            None => s.missing.push("tuning.jsonl".into()),
        }
        Ok(s)
    }
}

/// Suite rank of a workload name — the paper's Table II order, then NN,
/// then Video; unknown names sort after the suite, alphabetically.
fn workload_rank(name: &str) -> (usize, String) {
    let suite = all_workloads(WorkloadScale::tiny());
    match suite.iter().position(|w| w.name.eq_ignore_ascii_case(name)) {
        Some(i) => (i, String::new()),
        None => (suite.len(), name.to_ascii_lowercase()),
    }
}

fn backend_rank(b: Backend) -> usize {
    Backend::ALL.iter().position(|x| *x == b).expect("backend in ALL")
}

/// Geometric mean (same definition as `ipim_core::experiments::geomean`,
/// re-derived here to keep the renderer's float path self-contained).
fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let sum: f64 = values.iter().map(|v| v.ln()).sum();
    (sum / values.len() as f64).exp()
}

/// Fixed-precision microseconds used throughout the tables.
fn us(ns: f64) -> String {
    format!("{:.2}", ns / 1000.0)
}

/// Renders the full report. Pure: same streams → byte-identical output,
/// regardless of the order lines appeared in on disk.
pub fn render(streams: &Streams) -> String {
    let mut out = String::new();
    out.push_str("# iPIM trajectory report\n\n");
    out.push_str(
        "One deterministic view over the repo's recorded result streams \
         (`matrix.jsonl`, `figures.jsonl`, `serve_fresh.jsonl`, `tuning.jsonl`). \
         Regenerate with `cargo run --release -p ipim-report --bin render_report`; \
         CI diffs the regenerated bytes against this file.\n\n",
    );
    let mut missing = streams.missing.clone();
    missing.sort_unstable();
    for m in &missing {
        out.push_str(&format!("> **missing stream:** `{m}` — its sections are skipped.\n"));
    }
    if !missing.is_empty() {
        out.push('\n');
    }
    render_matrix(&mut out, streams);
    render_speedups(&mut out, streams);
    render_divergence(&mut out, streams);
    render_throughput(&mut out, streams);
    render_tuning(&mut out, streams);
    out
}

fn sorted_cells(streams: &Streams) -> Vec<&MatrixCell> {
    let mut cells: Vec<&MatrixCell> = streams.cells.iter().collect();
    // Coordinates first; the measurement fields break ties so that even
    // a degenerate input with duplicate coordinates renders identically
    // regardless of line order.
    let key = |c: &MatrixCell| {
        (
            workload_rank(&c.workload),
            c.scale,
            backend_rank(c.backend),
            c.wall_ns,
            c.kernel_ns.to_bits(),
        )
    };
    cells.sort_by_key(|c| key(c));
    cells
}

fn render_matrix(out: &mut String, streams: &Streams) {
    out.push_str("## Benchmark matrix\n\n");
    if streams.cells.is_empty() {
        out.push_str("_No matrix cells recorded._\n\n");
        return;
    }
    out.push_str(
        "Modeled kernel time per cell in µs (cycle engines: simulated cycles at 1 GHz; \
         gpu: V100 roofline; cpu_ref: measured interpreter wall time). \
         `—` marks a cell whose schedule does not map at that scale.\n\n",
    );
    let cells = sorted_cells(streams);
    out.push_str("| workload | family | scale |");
    for b in Backend::ALL {
        out.push_str(&format!(" {} |", b.name()));
    }
    out.push_str("\n|---|---|---:|");
    for _ in Backend::ALL {
        out.push_str("---:|");
    }
    out.push('\n');
    // Row keys in sorted order, deduplicated.
    let mut rows: Vec<(String, String, u32)> =
        cells.iter().map(|c| (c.workload.clone(), c.family.clone(), c.scale)).collect();
    rows.dedup();
    for (workload, family, scale) in rows {
        out.push_str(&format!("| {workload} | {family} | {scale} |"));
        for b in Backend::ALL {
            let cell =
                cells.iter().find(|c| c.workload == workload && c.scale == scale && c.backend == b);
            match cell {
                Some(c) => out.push_str(&format!(" {} |", us(c.kernel_ns))),
                None => out.push_str(" — |"),
            }
        }
        out.push('\n');
    }
    out.push('\n');
}

fn render_speedups(out: &mut String, streams: &Streams) {
    out.push_str("## Speedup vs baselines\n\n");
    let cells = sorted_cells(streams);
    let find = |workload: &str, scale: u32, b: Backend| {
        cells.iter().find(|c| c.workload == workload && c.scale == scale && c.backend == b)
    };
    let mut rows = Vec::new();
    let mut keys: Vec<(String, u32)> =
        cells.iter().map(|c| (c.workload.clone(), c.scale)).collect();
    keys.dedup();
    for (workload, scale) in keys {
        let Some(ipim) = find(&workload, scale, Backend::SkipAhead) else { continue };
        let vs_gpu = find(&workload, scale, Backend::Gpu).map(|g| g.kernel_ns / ipim.kernel_ns);
        let vs_ponb = match (find(&workload, scale, Backend::Ponb), ipim.cycles) {
            (Some(p), Some(ic)) => p.cycles.map(|pc| pc as f64 / ic as f64),
            _ => None,
        };
        rows.push((workload, scale, vs_gpu, vs_ponb));
    }
    if rows.is_empty() {
        out.push_str("_No comparable skip_ahead cells recorded._\n\n");
        return;
    }
    out.push_str(
        "iPIM (skip_ahead) per-cell speedup: vs the V100 roofline at the same scale, \
         and vs process-on-base-die (same engine, base-die placement).\n\n",
    );
    out.push_str("| workload | scale | vs gpu | vs ponb |\n|---|---:|---:|---:|\n");
    let fmt = |v: Option<f64>| v.map_or("—".to_string(), |x| format!("{x:.2}×"));
    for (workload, scale, vs_gpu, vs_ponb) in &rows {
        out.push_str(&format!("| {workload} | {scale} | {} | {} |\n", fmt(*vs_gpu), fmt(*vs_ponb)));
    }
    let gms: Vec<f64> = rows.iter().filter_map(|r| r.2).collect();
    let pms: Vec<f64> = rows.iter().filter_map(|r| r.3).collect();
    out.push_str(&format!(
        "| **geomean** | | **{}** | **{}** |\n\n",
        if gms.is_empty() { "—".to_string() } else { format!("{:.2}×", geomean(&gms)) },
        if pms.is_empty() { "—".to_string() } else { format!("{:.2}×", geomean(&pms)) },
    ));
}

fn render_divergence(out: &mut String, streams: &Streams) {
    out.push_str("## Analytic divergence envelope\n\n");
    let mut divs: Vec<(&FigLine, &str)> = streams
        .figures
        .iter()
        .filter_map(|f| {
            f.name
                .strip_prefix("analytic/divergence/")
                .filter(|_| f.divergence_pct.is_some())
                .map(|w| (f, w))
        })
        .collect();
    if divs.is_empty() {
        out.push_str("_No analytic/divergence entries in figures.jsonl._\n\n");
        return;
    }
    divs.sort_by_key(|a| (workload_rank(a.1), a.0.scale));
    let mut scales: Vec<u64> = divs.iter().filter_map(|(f, _)| f.scale).collect();
    scales.sort_unstable();
    scales.dedup();
    out.push_str(
        "Analytic-tier cycle divergence vs the skip-ahead engine, per calibrated \
         workload × scale (from `figures.jsonl`; the `bench_regress` drift gate \
         fails at +10 pts over these baselines).\n\n",
    );
    out.push_str("| workload |");
    for s in &scales {
        out.push_str(&format!(" {s}² |"));
    }
    out.push_str("\n|---|");
    for _ in &scales {
        out.push_str("---:|");
    }
    out.push('\n');
    let mut names: Vec<&str> = divs.iter().map(|(_, w)| *w).collect();
    names.dedup();
    let mut worst = 0.0f64;
    for name in names {
        out.push_str(&format!("| {name} |"));
        for s in &scales {
            match divs.iter().find(|(f, w)| *w == name && f.scale == Some(*s)) {
                Some((f, _)) => {
                    let d = f.divergence_pct.expect("filtered above");
                    worst = worst.max(d);
                    out.push_str(&format!(" {d:.2}% |"));
                }
                None => out.push_str(" — |"),
            }
        }
        out.push('\n');
    }
    out.push_str(&format!("\nEnvelope (worst calibrated cell): **{worst:.2}%**.\n\n"));
}

fn render_throughput(out: &mut String, streams: &Streams) {
    out.push_str("## Serve / shard throughput\n\n");
    let mut rows: Vec<&FigLine> = streams
        .figures
        .iter()
        .chain(streams.serve.iter())
        .filter(|f| {
            f.name.starts_with("serve/throughput/") || f.name.starts_with("shard/throughput/")
        })
        .collect();
    if rows.is_empty() {
        out.push_str("_No throughput entries recorded._\n\n");
        return;
    }
    rows.sort_by(|a, b| {
        (&a.name, &a.transport, &a.mix, a.cores).cmp(&(&b.name, &b.transport, &b.mix, b.cores))
    });
    out.push_str(
        "Closed-loop loadgen soaks (`figures.jsonl` baselines + `serve_fresh.jsonl` \
         fresh runs). Throughput entries are cores-matched by the regression gate.\n\n",
    );
    out.push_str(
        "| entry | transport | mix | cores | rps | p50 µs | p99 µs |\n\
         |---|---|---|---:|---:|---:|---:|\n",
    );
    for f in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} |\n",
            f.name,
            f.transport.as_deref().unwrap_or("inproc"),
            f.mix.as_deref().unwrap_or("—"),
            f.cores.map_or("—".to_string(), |c| c.to_string()),
            f.throughput_rps.map_or("—".to_string(), |r| format!("{r:.1}")),
            f.min_ns.map_or("—".to_string(), us),
            f.p99_ns.map_or("—".to_string(), us),
        ));
    }
    out.push('\n');
}

fn render_tuning(out: &mut String, streams: &Streams) {
    out.push_str("## Tuner leaderboard\n\n");
    if streams.tuning.is_empty() {
        out.push_str("_No tune_best entries recorded._\n\n");
        return;
    }
    let mut rows: Vec<&TuneBest> = streams.tuning.iter().collect();
    rows.sort_by(|a, b| {
        b.speedup.partial_cmp(&a.speedup).expect("speedups are finite").then_with(|| {
            (workload_rank(&a.workload), a.seed).cmp(&(workload_rank(&b.workload), b.seed))
        })
    });
    out.push_str(
        "Autotuner runs from `tuning.jsonl`, best speedup over the hand schedule first.\n\n",
    );
    out.push_str(
        "| workload | size | strategy | seed | best candidate | default → best cycles | \
         speedup | evals |\n|---|---|---|---:|---|---|---:|---:|\n",
    );
    for t in rows {
        let evals = streams
            .tune_evals
            .iter()
            .find(|(w, s, d, _)| (w, s, *d) == (&t.workload, &t.strategy, t.seed))
            .map_or("—".to_string(), |(_, _, _, n)| n.to_string());
        out.push_str(&format!(
            "| {} | {}×{} | {} | {} | `{}` | {} → {} | {:.3}× | {} |\n",
            t.workload,
            t.width,
            t.height,
            t.strategy,
            t.seed,
            t.best_candidate,
            t.default_cycles.map_or("—".to_string(), |c| c.to_string()),
            t.best_cycles,
            t.speedup,
            evals,
        ));
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Bound;

    fn cell(workload: &str, scale: u32, backend: Backend, kernel_ns: f64) -> MatrixCell {
        MatrixCell {
            workload: workload.into(),
            family: "image".into(),
            scale,
            backend,
            cycles: backend.engine_placement().map(|_| kernel_ns as u64),
            kernel_ns,
            wall_ns: 1000,
            gbps: None,
            pj_per_op: None,
            ai: None,
            peak_gbps: None,
            bound: Bound::NotApplicable,
        }
    }

    #[test]
    fn render_is_input_order_invariant() {
        let mut s = Streams {
            cells: vec![
                cell("Blur", 64, Backend::SkipAhead, 1000.0),
                cell("Blur", 64, Backend::Gpu, 4000.0),
                cell("Brighten", 64, Backend::SkipAhead, 500.0),
            ],
            figures: vec![FigLine {
                name: "analytic/divergence/Blur".into(),
                divergence_pct: Some(3.4),
                scale: Some(64),
                ..FigLine::default()
            }],
            ..Streams::default()
        };
        let a = render(&s);
        s.cells.reverse();
        s.figures.reverse();
        let b = render(&s);
        assert_eq!(a, b, "render must not depend on input order");
        assert!(a.contains("| Blur | image | 64 |"), "{a}");
        assert!(a.contains("4.00×"), "gpu/ipim speedup: {a}");
    }

    #[test]
    fn missing_streams_are_loud_not_fatal() {
        let dir = std::env::temp_dir().join("ipim-report-empty-stream-test");
        std::fs::create_dir_all(&dir).unwrap();
        let s = Streams::load(&dir).unwrap();
        assert_eq!(s.missing.len(), 4, "{:?}", s.missing);
        let text = render(&s);
        for stream in ["matrix.jsonl", "figures.jsonl", "serve_fresh.jsonl", "tuning.jsonl"] {
            assert!(text.contains(&format!("**missing stream:** `{stream}`")), "{text}");
        }
        assert!(text.contains("_No matrix cells recorded._"), "{text}");
    }

    #[test]
    fn tuning_leaderboard_counts_evals() {
        let tuning_text = concat!(
            "{\"kind\":\"tune_eval\",\"workload\":\"Blur\",\"strategy\":\"hill\",\"seed\":7}\n",
            "{\"kind\":\"tune_eval\",\"workload\":\"Blur\",\"strategy\":\"hill\",\"seed\":7}\n",
            "{\"kind\":\"tune_best\",\"workload\":\"Blur\",\"width\":64,\"height\":64,",
            "\"seed\":7,\"strategy\":\"hill\",\"best_candidate\":\"tile=16x8\",",
            "\"best_cycles\":3000,\"default_cycles\":3768,\"speedup\":1.256}\n",
        );
        let (best, evals) = parse_tuning(tuning_text, "tuning.jsonl").unwrap();
        let s = Streams { tuning: best, tune_evals: evals, ..Streams::default() };
        let text = render(&s);
        assert!(
            text.contains("| Blur | 64×64 | hill | 7 | `tile=16x8` | 3768 → 3000 | 1.256× | 2 |"),
            "{text}"
        );
    }
}
