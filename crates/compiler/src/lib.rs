//! End-to-end Halide-to-SIMB compilation flow for iPIM (paper Sec. V).
//!
//! [`compile`] takes a frontend [`Pipeline`] plus a
//! machine configuration and produces a [`CompiledPipeline`]: one SPMD SIMB
//! [`Program`] every vault executes, plus the
//! [`MemoryMap`] describing where each buffer lives in the banks.
//!
//! The flow mirrors Fig. 4 of the paper:
//!
//! 1. **Memory planning** — the output stage's `ipim_tile` schedule fixes
//!    the tile grid; buffers are distributed with overlap halos or
//!    replicated (dynamic gathers); see [`layout`].
//! 2. **Instruction lowering** — each `compute_root` stage lowers to loops
//!    of SIMB instructions with virtual data registers; histogram
//!    reductions get a specialized multi-phase lowering.
//! 3. **Backend optimizations** ([`CompileOptions`], paper Sec. V-C):
//!    register allocation (min/max policies, with DRAM spilling),
//!    memory-order enforcement, and Algorithm 1 instruction reordering.
//!
//! The five compiler configurations evaluated in the paper's Fig. 12 are
//! exposed as constructors: [`CompileOptions::opt`] and
//! [`CompileOptions::baseline1`]–[`baseline4`](CompileOptions::baseline4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codegen;
pub mod cost;
mod histogram;
pub mod host;
pub mod kb;
pub mod layout;
pub mod regalloc;
pub mod reorder;
mod stagecache;

use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

use ipim_arch::MachineConfig;
use ipim_frontend::{Expr, FuncBody, FuncDef, Pipeline, SourceId};
use ipim_isa::Program;

use codegen::{pinned_dregs, MachineFacts, StageCtx};
pub use cost::{estimate, CostEstimate};
pub use layout::{BufferLayout, LayoutError, MemoryMap, TileGrid};
pub use regalloc::{RegAllocError, RegAllocPolicy};
pub use stagecache::{fnv1a, stage_cache_stats};

/// Backend optimization switches (the Fig. 12 configuration space).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Register-allocation policy.
    pub reg_alloc: RegAllocPolicy,
    /// Run Algorithm 1 instruction reordering.
    pub reorder: bool,
    /// Add memory-order-enforcement edges before reordering.
    pub memory_order: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self::opt()
    }
}

impl CompileOptions {
    /// The fully optimized configuration (`opt` in Fig. 12).
    pub fn opt() -> Self {
        Self { reg_alloc: RegAllocPolicy::Max, reorder: true, memory_order: true }
    }

    /// Naive baseline: min register allocation, no reordering.
    pub fn baseline1() -> Self {
        Self { reg_alloc: RegAllocPolicy::Min, reorder: false, memory_order: false }
    }

    /// Like `opt` but with min register allocation.
    pub fn baseline2() -> Self {
        Self { reg_alloc: RegAllocPolicy::Min, reorder: true, memory_order: true }
    }

    /// Like `opt` but without instruction reordering.
    pub fn baseline3() -> Self {
        Self { reg_alloc: RegAllocPolicy::Max, reorder: false, memory_order: true }
    }

    /// Like `opt` but without memory-order enforcement.
    pub fn baseline4() -> Self {
        Self { reg_alloc: RegAllocPolicy::Max, reorder: true, memory_order: false }
    }
}

/// Error produced by compilation.
#[derive(Debug)]
pub enum CompileError {
    /// Memory planning failed.
    Layout(LayoutError),
    /// Register allocation failed.
    RegAlloc(RegAllocError),
    /// Final program assembly failed (a compiler bug).
    Program(ipim_isa::ProgramError),
    /// The pipeline uses a feature outside the supported subset.
    Unsupported {
        /// Description of the unsupported construct.
        what: String,
    },
    /// A per-stage resource limit was exceeded.
    TooComplex {
        /// Description of the exceeded limit.
        what: String,
    },
    /// Spill space would overflow the bank.
    SpillOverflow {
        /// Bytes needed beyond capacity.
        needed: u32,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Layout(e) => write!(f, "layout: {e}"),
            CompileError::RegAlloc(e) => write!(f, "register allocation: {e}"),
            CompileError::Program(e) => write!(f, "program assembly: {e}"),
            CompileError::Unsupported { what } => write!(f, "unsupported: {what}"),
            CompileError::TooComplex { what } => write!(f, "stage too complex: {what}"),
            CompileError::SpillOverflow { needed } => {
                write!(f, "spill space exceeds bank capacity by {needed} bytes")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<LayoutError> for CompileError {
    fn from(e: LayoutError) -> Self {
        CompileError::Layout(e)
    }
}

impl From<RegAllocError> for CompileError {
    fn from(e: RegAllocError) -> Self {
        CompileError::RegAlloc(e)
    }
}

impl From<ipim_isa::ProgramError> for CompileError {
    fn from(e: ipim_isa::ProgramError) -> Self {
        CompileError::Program(e)
    }
}

/// A compiled pipeline: the SPMD program plus its memory map.
#[derive(Debug, Clone)]
pub struct CompiledPipeline {
    /// The program every vault executes.
    pub program: Program,
    /// Where each buffer lives in the banks.
    pub map: MemoryMap,
    /// Register-spill slots the allocator needed (0 under ample RF).
    pub spill_slots: u32,
    /// Static instruction count.
    pub static_instructions: usize,
}

/// Compiles `pipeline` for the machine described by `config`.
///
/// # Errors
///
/// Returns [`CompileError`] when the pipeline falls outside the supported
/// subset (see the error variants) or exceeds machine resources.
pub fn compile(
    pipeline: &Pipeline,
    config: &MachineConfig,
    options: &CompileOptions,
) -> Result<CompiledPipeline, CompileError> {
    let total_pes = config.total_pes() as u32;
    let map = MemoryMap::plan(pipeline, total_pes, config.bank.bank_bytes)?;
    let roots = pipeline.root_stages();

    // Scratch allocation: histogram partials first, then spill slots.
    let mut scratch = map.free_base;
    let mut hist_scratch: HashMap<ipim_frontend::SourceId, u32> = HashMap::new();
    for stage in &roots {
        if let Some(FuncBody::Histogram { bins, .. }) = &stage.body {
            hist_scratch.insert(stage.source, scratch);
            scratch += histogram::scratch_bytes(*bins);
        }
    }
    let spill_base = scratch;

    let facts = MachineFacts {
        total_pes,
        pes_per_vault: config.pes_per_vault() as u32,
        data_rf: config.data_rf_entries as u32,
        pes_per_pg: config.pes_per_pg as u32,
        vaults_per_cube: config.vaults_per_cube as u32,
        pgsm_bytes: config.pgsm_bytes,
        addr_rf: config.addr_rf_entries as u32,
    };

    // Lower each root stage into its own label-self-contained item list,
    // memoized process-wide: the stage key captures everything the lowering
    // reads (see `stage_key`), so sibling schedule candidates and repeated
    // compilations of the same pipeline re-lower only stages whose inputs
    // actually changed. Lists are spliced with labels rebased, which yields
    // exactly the item stream a single shared builder would have produced.
    let mut items: Vec<kb::Item> = Vec::new();
    let mut label_base = 0u32;
    let mut sync_phase = 0u32;
    let total_vaults = config.total_vaults() as u32;
    for stage in &roots {
        let key = stage_key(
            pipeline,
            stage,
            &map,
            facts,
            options.reg_alloc,
            hist_scratch.get(&stage.source).copied(),
            total_vaults,
            sync_phase,
        );
        let lowered = match stagecache::lookup(key) {
            Some(hit) => hit,
            None => {
                let mut kbuilder = kb::KernelBuilder::new();
                let mut phase = sync_phase;
                {
                    let mut ctx =
                        StageCtx::new(&mut kbuilder, pipeline, &map, facts, options.reg_alloc);
                    ctx.emit_setup();
                    match stage.body.as_ref().expect("validated pipeline") {
                        FuncBody::Pure(e) => {
                            ctx.hoist_constants(e)?;
                            codegen::emit_pure_stage(&mut ctx, stage, e)?;
                        }
                        FuncBody::Histogram { source, bins, min, max } => {
                            histogram::emit_histogram_stage(
                                &mut ctx,
                                stage.source,
                                *source,
                                *bins,
                                *min,
                                *max,
                                hist_scratch[&stage.source],
                                total_vaults,
                                &mut phase,
                            )?;
                        }
                    }
                }
                let labels = kbuilder.labels_used();
                let lowered = stagecache::LoweredStage {
                    items: kbuilder.finish(),
                    labels,
                    sync_phase_after: phase,
                };
                stagecache::insert(key, lowered.clone());
                lowered
            }
        };
        items.extend(kb::offset_labels(&lowered.items, label_base));
        label_base += lowered.labels;
        sync_phase = lowered.sync_phase_after;
    }
    let spill_slots = regalloc::allocate(
        &mut items,
        pinned_dregs(config.data_rf_entries as u32),
        config.data_rf_entries,
        spill_base,
        options.reg_alloc,
    )?;
    let spill_end = spill_base + spill_slots * 16;
    if spill_end > config.bank.bank_bytes {
        return Err(CompileError::SpillOverflow { needed: spill_end - config.bank.bank_bytes });
    }
    if options.reorder {
        reorder::reorder(&mut items, options.memory_order);
    }
    let program = kb::lower(&items)?;
    let static_instructions = program.len();
    Ok(CompiledPipeline { program, map, spill_slots, static_instructions })
}

/// Content-addressed key of one stage's lowering: an FNV-1a hash over a
/// canonical rendering of *every* input the per-stage codegen reads.
///
/// That is: the stage itself (source id, extent, schedule, body), the
/// logical extent and planned layout of every buffer the body references,
/// the stage's own layout, the tile grid, the machine facts, the
/// register-allocation policy, and — for histogram stages — the scratch
/// base, the vault count and the incoming sync phase. Func *names* are
/// deliberately absent: they only ever reach error messages, and errors
/// are never cached.
#[allow(clippy::too_many_arguments)]
fn stage_key(
    pipeline: &Pipeline,
    stage: &FuncDef,
    map: &MemoryMap,
    facts: MachineFacts,
    reg_alloc: RegAllocPolicy,
    hist_scratch: Option<u32>,
    total_vaults: u32,
    sync_phase: u32,
) -> u64 {
    let mut key = String::new();
    let _ = write!(
        key,
        "stage {}={}x{}[{}]{{{}}};",
        stage.source,
        stage.extent.0,
        stage.extent.1,
        stage.schedule.summary(),
        stage.body_summary(),
    );
    let mut sources: Vec<SourceId> = match stage.body.as_ref().expect("validated pipeline") {
        FuncBody::Pure(e) => e.sources(),
        FuncBody::Histogram { source, .. } => vec![*source],
    };
    sources.push(stage.source);
    sources.sort_unstable();
    sources.dedup();
    for s in sources {
        let (w, h) = pipeline.extent(s);
        let _ = write!(key, "buf {s}={w}x{h}:{:?};", map.layout(s));
    }
    let _ = write!(
        key,
        "grid {:?};facts {facts:?};reg_alloc {reg_alloc:?};\
         hist {hist_scratch:?}/{total_vaults};phase {sync_phase}",
        map.grid,
    );
    fnv1a(key.as_bytes())
}

impl StageCtx<'_> {
    /// Hoists the expression's f32 constants into pinned registers inside a
    /// setup region, so loop bodies reuse them.
    pub(crate) fn hoist_constants(&mut self, expr: &Expr) -> Result<(), CompileError> {
        let mut consts = Vec::new();
        collect_consts(expr, &mut consts);
        if consts.is_empty() {
            return Ok(());
        }
        self.kb.begin_straight();
        for c in consts.into_iter().take(9) {
            let _ = self.const_reg(c)?;
        }
        self.kb.end_straight();
        Ok(())
    }
}

fn collect_consts(e: &Expr, out: &mut Vec<f32>) {
    match e {
        Expr::ConstF(c) => {
            if !out.iter().any(|v| v.to_bits() == c.to_bits()) {
                out.push(*c);
            }
        }
        Expr::ConstI(_) | Expr::Var(_) => {}
        Expr::At(_, a, b) | Expr::Bin(_, a, b) => {
            collect_consts(a, out);
            collect_consts(b, out);
        }
        Expr::Cast(_, inner) => collect_consts(inner, out),
        Expr::Select(c, a, b) => {
            collect_consts(c, out);
            collect_consts(a, out);
            collect_consts(b, out);
        }
    }
}
