//! Lowering of pure (map/stencil/resample/gather) stages to SIMB code.
//!
//! Every vault runs the same program (SPMD); a PE finds its tiles through
//! the identity registers A0–A3. Per stage, the generated structure is:
//!
//! ```text
//! setup:   pe_linear, pinned constants
//! slot loop (CtrlRF counter + AddrRF mirror):
//!   tile-id / slot-base index calculations        (straight region)
//!   optional PGSM staging of each input's tile+halo window
//!   row loop:
//!     per-access row-base index calculations      (straight region)
//!     column loop (vectorized by 4):
//!       loads → expression DAG → store            (straight region)
//! ```
//!
//! Inner-loop bodies are emitted with *virtual* data registers for the
//! register-allocation pass, and every memory instruction carries its
//! [`MemTag`] for the dependency/reordering passes.

use std::collections::HashMap;

use ipim_frontend::{
    analyze_coord, AffineCoord, Expr, FuncDef, Pipeline, ScalarType, SourceId, Var,
};
use ipim_isa::{
    AddrOperand, AddrReg, ArfOp, ArfSrc, CompMode, CompOp, CrfOp, CrfSrc, CtrlReg, DataReg,
    DataType, Instruction, SimbMask, VecMask, ARF_CHIP_ID, ARF_PE_ID, ARF_PG_ID, ARF_VAULT_ID,
};

use crate::kb::{KernelBuilder, MemTag};
use crate::layout::{BufferLayout, MemoryMap};
use crate::regalloc::RegAllocPolicy;
use crate::CompileError;

// Fixed AddrRF roles (physical allocation by the compiler).
const A_PE_LINEAR: u8 = 4;
const A_SLOT: u8 = 5;
const A_TILE: u8 = 6;
const A_TX: u8 = 7;
const A_TY: u8 = 8;
const A_XI_EL: u8 = 9; // output stored-x minus halo (logical x within tile)
const A_XI_BY: u8 = 10; // stored-x in bytes (aligned store offset)
const A_YI: u8 = 11; // stored-y row counter
const A_PGSM_BASE: u8 = 12; // this PE's PGSM partition base
/// First AddrRF register available for per-stage bases and temps.
const A_POOL: u8 = 13;

// Fixed CtrlRF roles.
const C_SLOT: u8 = 0;
const C_Y: u8 = 1;
const C_X: u8 = 2;
const C_TMP: u8 = 3;

// Pinned DataRF registers.
/// All-lanes zero.
pub const D_ZERO: u8 = 0;
/// All-lanes 1.0f.
pub const D_ONE: u8 = 1;
/// Integer lane-index vector [0, 1, 2, 3].
pub const D_LANES: u8 = 2;
const D_CONST0: u8 = 3;
/// Default first virtual data register (the register-allocation boundary);
/// small register files shrink it via [`pinned_dregs`].
pub const PINNED_DREGS: u8 = 12;

/// The pinned-register boundary for a given DataRF size: small files keep
/// only the three structural constants pinned so the allocator retains
/// enough temporaries (the Fig. 10(a) sweep reaches 16 entries).
pub fn pinned_dregs(data_rf_entries: u32) -> u8 {
    if data_rf_entries >= 24 {
        PINNED_DREGS
    } else {
        4
    }
}

fn areg(i: u8) -> AddrReg {
    AddrReg::new(i)
}

fn creg(i: u8) -> CtrlReg {
    CtrlReg::new(i)
}

fn dreg(i: u8) -> DataReg {
    DataReg::new(i)
}

/// Per-compilation machine facts the codegen needs.
#[derive(Debug, Clone, Copy)]
pub struct MachineFacts {
    /// Total PEs across the machine.
    pub total_pes: u32,
    /// PEs per vault (SIMB width).
    pub pes_per_vault: u32,
    /// DataRF entries per PE.
    pub data_rf: u32,
    /// PEs per process group.
    pub pes_per_pg: u32,
    /// Vaults per cube.
    pub vaults_per_cube: u32,
    /// PGSM bytes per process group.
    pub pgsm_bytes: u32,
    /// AddrRF entries.
    pub addr_rf: u32,
}

/// Codegen context for one stage.
pub(crate) struct StageCtx<'a> {
    pub kb: &'a mut KernelBuilder,
    pub pipeline: &'a Pipeline,
    pub map: &'a MemoryMap,
    pub facts: MachineFacts,
    pub mask: SimbMask,
    /// Next virtual data register.
    next_vreg: u16,
    /// Next pool AddrRF register (bump within stage; rotated for temps).
    next_areg: u8,
    arf_temp_pool: Vec<u8>,
    arf_temp_next: usize,
    /// Register-allocation policy, also applied to AddrRF temporaries.
    arf_policy: RegAllocPolicy,
    /// Element offset of the current unrolled body instance in x.
    x_off_elems: i32,
    /// First virtual data register (depends on the DataRF size).
    pinned: u8,
    /// Hoisted f32 constants → pinned register.
    consts: HashMap<u32, u8>,
    /// Per-(source, fy-signature, staged) row-base register, valid within one row.
    row_bases: HashMap<RowKey, u8>,
    /// Which sources are staged in the PGSM this stage.
    pub staged: Vec<SourceId>,
    /// PGSM offset of each staged source within the PE partition.
    pub pgsm_offsets: HashMap<SourceId, u32>,
    /// Staging mode per staged source.
    pub(crate) staging_modes: HashMap<SourceId, StagingMode>,
}

impl<'a> StageCtx<'a> {
    pub fn new(
        kb: &'a mut KernelBuilder,
        pipeline: &'a Pipeline,
        map: &'a MemoryMap,
        facts: MachineFacts,
        arf_policy: RegAllocPolicy,
    ) -> Self {
        Self {
            kb,
            pipeline,
            map,
            facts,
            mask: SimbMask::all(facts.pes_per_vault as usize),
            pinned: pinned_dregs(facts.data_rf),
            next_vreg: pinned_dregs(facts.data_rf) as u16,
            next_areg: A_POOL,
            arf_temp_pool: Vec::new(),
            arf_temp_next: 0,
            arf_policy,
            x_off_elems: 0,
            consts: HashMap::new(),
            row_bases: HashMap::new(),
            staged: Vec::new(),
            pgsm_offsets: HashMap::new(),
            staging_modes: HashMap::new(),
        }
    }

    /// Fresh virtual data register.
    pub(crate) fn vreg(&mut self) -> Result<u8, CompileError> {
        if self.next_vreg > 250 {
            return Err(CompileError::TooComplex {
                what: "inner-loop body exceeds the virtual register space".into(),
            });
        }
        let v = self.next_vreg as u8;
        self.next_vreg += 1;
        Ok(v)
    }

    /// Resets per-iteration virtual register numbering (regions are
    /// independent allocation domains).
    pub(crate) fn reset_vregs(&mut self) {
        self.next_vreg = self.pinned as u16;
    }

    /// Permanently claims a pool AddrRF register for this stage.
    pub(crate) fn claim_areg(&mut self, what: &str) -> Result<u8, CompileError> {
        let limit = match self.arf_temp_pool.first() {
            Some(&lo) => lo as u32,
            None => self.facts.addr_rf,
        };
        if (self.next_areg as u32) >= limit {
            return Err(CompileError::TooComplex {
                what: format!("out of address registers while allocating {what}"),
            });
        }
        let a = self.next_areg;
        self.next_areg += 1;
        Ok(a)
    }

    /// An AddrRF temporary: under the `Max` policy temps rotate over the
    /// top half of the file (maximal reuse distance, no anti-dependences
    /// against in-flight address consumers); under `Min` a single register
    /// is reused immediately — the textbook minimal allocation that stalls
    /// iPIM's in-order issue on every in-flight load (paper Sec. V-C).
    pub(crate) fn arf_temp(&mut self) -> Result<u8, CompileError> {
        if self.arf_temp_pool.is_empty() {
            let hi = self.facts.addr_rf as u8;
            let lo = match self.arf_policy {
                RegAllocPolicy::Max => (self.facts.addr_rf as u8 / 2).max(A_POOL + 8),
                RegAllocPolicy::Min => hi.saturating_sub(2),
            };
            if lo <= self.next_areg || lo >= hi {
                return Err(CompileError::TooComplex {
                    what: "out of address registers for temporaries".into(),
                });
            }
            self.arf_temp_pool = (lo..hi).collect();
        }
        let a = self.arf_temp_pool[self.arf_temp_next % self.arf_temp_pool.len()];
        self.arf_temp_next += 1;
        Ok(a)
    }

    // --- small emission helpers ---

    pub(crate) fn calc_masked(
        &mut self,
        op: ArfOp,
        dst: u8,
        src1: u8,
        src2: ArfSrc,
        mask: SimbMask,
    ) {
        self.kb.push(Instruction::CalcArf {
            op,
            dst: areg(dst),
            src1: areg(src1),
            src2,
            simb_mask: mask,
        });
    }

    pub(crate) fn calc(&mut self, op: ArfOp, dst: u8, src1: u8, src2: ArfSrc) {
        self.kb.push(Instruction::CalcArf {
            op,
            dst: areg(dst),
            src1: areg(src1),
            src2,
            simb_mask: self.mask,
        });
    }

    /// Sets an AddrRF register to an immediate (via ×0 then +imm).
    pub(crate) fn arf_seti(&mut self, dst: u8, v: i32) {
        self.calc(ArfOp::Mul, dst, dst, ArfSrc::Imm(0));
        if v != 0 {
            self.calc(ArfOp::Add, dst, dst, ArfSrc::Imm(v));
        }
    }

    pub(crate) fn comp(
        &mut self,
        op: CompOp,
        dtype: DataType,
        mode: CompMode,
        dst: u8,
        s1: u8,
        s2: u8,
    ) {
        self.kb.push(Instruction::Comp {
            op,
            dtype,
            mode,
            dst: dreg(dst),
            src1: dreg(s1),
            src2: dreg(s2),
            vec_mask: VecMask::ALL,
            simb_mask: self.mask,
        });
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn comp_masked(
        &mut self,
        op: CompOp,
        dtype: DataType,
        mode: CompMode,
        dst: u8,
        s1: u8,
        s2: u8,
        vec_mask: VecMask,
    ) {
        self.kb.push(Instruction::Comp {
            op,
            dtype,
            mode,
            dst: dreg(dst),
            src1: dreg(s1),
            src2: dreg(s2),
            vec_mask,
            simb_mask: self.mask,
        });
    }

    pub(crate) fn seti_drf(&mut self, dst: u8, bits: u32) {
        self.kb.push(Instruction::SetiDrf {
            drf: dreg(dst),
            imm: bits,
            vec_mask: VecMask::ALL,
            simb_mask: self.mask,
        });
    }

    /// The pinned register holding `c`, or a fresh virtual `seti`.
    pub(crate) fn const_reg(&mut self, c: f32) -> Result<u8, CompileError> {
        let bits = c.to_bits();
        if let Some(&r) = self.consts.get(&bits) {
            return Ok(r);
        }
        let next = D_CONST0 + self.consts.len() as u8;
        if next < self.pinned {
            self.consts.insert(bits, next);
            self.seti_drf(next, bits);
            Ok(next)
        } else {
            let v = self.vreg()?;
            self.seti_drf(v, bits);
            Ok(v)
        }
    }

    /// Emits the one-time per-stage setup: pe_linear, pinned constants.
    pub fn emit_setup(&mut self) {
        self.kb.begin_straight();
        // pe_linear = ((chip * vaults_per_cube) + vault) * pes_per_vault
        //             + pg * pes_per_pg + pe
        let m = self.facts;
        self.kb.push(Instruction::CalcArf {
            op: ArfOp::Mul,
            dst: areg(A_PE_LINEAR),
            src1: ARF_CHIP_ID,
            src2: ArfSrc::Imm(m.vaults_per_cube as i32),
            simb_mask: self.mask,
        });
        self.kb.push(Instruction::CalcArf {
            op: ArfOp::Add,
            dst: areg(A_PE_LINEAR),
            src1: areg(A_PE_LINEAR),
            src2: ArfSrc::Reg(ARF_VAULT_ID),
            simb_mask: self.mask,
        });
        self.calc(ArfOp::Mul, A_PE_LINEAR, A_PE_LINEAR, ArfSrc::Imm(m.pes_per_vault as i32));
        let t = A_TILE; // reuse as scratch during setup
        self.kb.push(Instruction::CalcArf {
            op: ArfOp::Mul,
            dst: areg(t),
            src1: ARF_PG_ID,
            src2: ArfSrc::Imm(m.pes_per_pg as i32),
            simb_mask: self.mask,
        });
        self.calc(ArfOp::Add, A_PE_LINEAR, A_PE_LINEAR, ArfSrc::Reg(areg(t)));
        self.kb.push(Instruction::CalcArf {
            op: ArfOp::Add,
            dst: areg(A_PE_LINEAR),
            src1: areg(A_PE_LINEAR),
            src2: ArfSrc::Reg(ARF_PE_ID),
            simb_mask: self.mask,
        });
        // This PE's PGSM partition base.
        let share = m.pgsm_bytes / m.pes_per_pg;
        self.kb.push(Instruction::CalcArf {
            op: ArfOp::Mul,
            dst: areg(A_PGSM_BASE),
            src1: ARF_PE_ID,
            src2: ArfSrc::Imm(share as i32),
            simb_mask: self.mask,
        });
        // Pinned data registers.
        self.kb.push(Instruction::Reset { drf: dreg(D_ZERO), simb_mask: self.mask });
        self.seti_drf(D_ONE, 1.0f32.to_bits());
        for l in 0..4u8 {
            self.kb.push(Instruction::SetiDrf {
                drf: dreg(D_LANES),
                imm: l as u32,
                vec_mask: VecMask::from_bits(1 << l),
                simb_mask: self.mask,
            });
        }
        self.kb.end_straight();
    }
}

/// Lowered classification of one access inside the loop body.
#[derive(Debug, Clone)]
enum AccessLowering {
    /// Aligned unit-stride vector load from the bank (the x byte offset
    /// is folded into the row base).
    BankVector { base_key: RowKey, source: SourceId },
    /// (Possibly unaligned) unit-stride vector load from the PGSM.
    PgsmVector { base_key: RowKey, source: SourceId },
    /// Per-lane gather from the PGSM (affine non-unit x).
    PgsmPerLane {
        base_key: RowKey,
        source: SourceId,
        num: i32,
        off: i32,
        den: i32,
        halo_bytesless: i32, // stored-halo in elements to add post-division
    },
    /// Per-lane gather from a replicated buffer (dynamic index).
    ReplicatedGather { source: SourceId, index: Expr },
}

/// Identifies a per-row base-address computation so equal rows are reused:
/// (source, y-num, y-off, y-den, goes-through-PGSM, folded x byte offset).
type RowKey = (SourceId, i64, i64, i64, bool, i32);

/// How a source is staged into the PGSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StagingMode {
    /// The whole stored tile is staged once per slot.
    WholeTile,
    /// Only the rows the current output row needs are staged in the row
    /// loop header (line-buffer style, for tiles larger than the PGSM
    /// share). The window starts at source stored row
    /// `ny·(yi − out_halo_y) + oy_min + src_halo_y` and spans `rows` rows;
    /// legal whenever every access has integer y scale (`dy == 1`).
    RowWindow {
        /// Common y scale of the accesses.
        ny: i32,
        /// Smallest access y offset.
        oy_min: i32,
        /// Number of rows staged.
        rows: u32,
    },
}

/// Compiles one pure stage into the kernel builder.
pub(crate) fn emit_pure_stage(
    ctx: &mut StageCtx<'_>,
    stage: &FuncDef,
    expr: &Expr,
) -> Result<(), CompileError> {
    let out_src = stage.source;
    let out_layout = ctx.map.layout(out_src).clone();
    let BufferLayout::Distributed {
        halo: (ohx, ohy),
        stored_w: osw,
        stored_h: osh,
        slot_bytes: oslot,
        base: obase,
        tile: (otw, _oth),
    } = out_layout
    else {
        return Err(CompileError::Unsupported {
            what: format!("stage `{}` writes a replicated buffer", stage.name),
        });
    };

    let grid = ctx.map.grid;
    if !grid.tiles().is_multiple_of(ctx.facts.total_pes) {
        return Err(CompileError::Unsupported {
            what: format!(
                "{} tiles do not divide evenly over {} PEs (static SIMB masks)",
                grid.tiles(),
                ctx.facts.total_pes
            ),
        });
    }
    let slots = grid.slots_per_pe();

    // --- plan accesses ---
    let plan = plan_accesses(ctx, stage, expr, (ohx, ohy))?;

    // Decide PGSM staging set, modes and offsets. Tiles that fit the PE's
    // PGSM share stage whole; larger ones fall back to line-buffer-style
    // row windows (only legal when every access has unit y scale).
    let share = ctx.facts.pgsm_bytes / ctx.facts.pes_per_pg;
    // Every PGSM port moves a full 16-byte vector, so a per-lane gather of
    // a region's last element — and the staging loop's final store on a
    // row width that is not vector-aligned — touches up to 12 bytes past
    // the region's end. Pad each staged allocation by that window so the
    // overrun lands in this PE's own share rather than the neighbouring
    // partition (or, on the last PE, off the scratchpad entirely).
    const STAGE_PAD: u32 = 12;
    let mut pgsm_cursor = 0u32;
    for s in &plan.staged_sources {
        let BufferLayout::Distributed { stored_w, stored_h, .. } = *ctx.map.layout(*s) else {
            unreachable!("staged sources are distributed");
        };
        let whole_bytes = stored_w * stored_h * 4;
        let (mode, bytes) = if pgsm_cursor + whole_bytes + STAGE_PAD <= share {
            (StagingMode::WholeTile, whole_bytes + STAGE_PAD)
        } else {
            // Collect the y-offsets of this source's staged accesses; the
            // fallback needs an integer common y scale (dy == 1).
            let mut oy_min = i32::MAX;
            let mut oy_max = i32::MIN;
            let mut common_ny: Option<i32> = None;
            let mut legal = true;
            for acc in &plan.accesses {
                let key = match &acc.lowering {
                    AccessLowering::PgsmVector { base_key, .. }
                    | AccessLowering::PgsmPerLane { base_key, .. } => *base_key,
                    _ => continue,
                };
                if key.0 != *s {
                    continue;
                }
                if key.3 != 1 || common_ny.is_some_and(|n| n != key.1 as i32) {
                    legal = false;
                    break;
                }
                common_ny = Some(key.1 as i32);
                oy_min = oy_min.min(key.2 as i32);
                oy_max = oy_max.max(key.2 as i32);
            }
            let Some(ny) = common_ny.filter(|_| legal && oy_min <= oy_max) else {
                return Err(CompileError::Unsupported {
                    what: format!(
                        "PGSM staging of `{}` needs {whole_bytes} bytes (share {share}) and \
                         the row-window fallback requires a common integer y scale",
                        ctx.map.names[s]
                    ),
                });
            };
            let rows = (oy_max - oy_min + 1) as u32;
            let bytes = rows * stored_w * 4 + STAGE_PAD;
            if pgsm_cursor + bytes > share {
                return Err(CompileError::Unsupported {
                    what: format!(
                        "row-window staging of `{}` needs {bytes} bytes, share is {share}",
                        ctx.map.names[s]
                    ),
                });
            }
            (StagingMode::RowWindow { ny, oy_min, rows }, bytes)
        };
        ctx.staging_modes.insert(*s, mode);
        ctx.pgsm_offsets.insert(*s, pgsm_cursor);
        pgsm_cursor += bytes;
    }
    ctx.staged = plan.staged_sources.clone();

    // --- per-buffer slot base registers ---
    let mut slot_base: HashMap<SourceId, u8> = HashMap::new();
    for s in plan.sources.iter().copied().chain(std::iter::once(out_src)) {
        if slot_base.contains_key(&s) {
            continue;
        }
        if matches!(ctx.map.layout(s), BufferLayout::Distributed { .. }) {
            slot_base.insert(s, ctx.claim_areg("slot base")?);
        }
    }

    // === slot loop ===
    ctx.kb.push(Instruction::SetiCrf { dst: creg(C_SLOT), imm: 0 });
    ctx.kb.begin_straight();
    ctx.arf_seti(A_SLOT, 0);
    ctx.kb.end_straight();
    let slot_top = ctx.kb.label();
    ctx.kb.bind(slot_top);

    // Tile indices and slot bases.
    ctx.kb.begin_straight();
    ctx.calc(ArfOp::Mul, A_TILE, A_SLOT, ArfSrc::Imm(ctx.facts.total_pes as i32));
    ctx.calc(ArfOp::Add, A_TILE, A_TILE, ArfSrc::Reg(areg(A_PE_LINEAR)));
    ctx.calc(ArfOp::Rem, A_TX, A_TILE, ArfSrc::Imm(grid.tiles_x as i32));
    ctx.calc(ArfOp::Div, A_TY, A_TILE, ArfSrc::Imm(grid.tiles_x as i32));
    for (s, reg) in &slot_base {
        let BufferLayout::Distributed { base, slot_bytes, .. } = ctx.map.layout(*s) else {
            unreachable!()
        };
        let (reg, base, slot_bytes) = (*reg, *base, *slot_bytes);
        ctx.calc(ArfOp::Mul, reg, A_SLOT, ArfSrc::Imm(slot_bytes as i32));
        ctx.calc(ArfOp::Add, reg, reg, ArfSrc::Imm(base as i32));
    }
    ctx.kb.end_straight();

    // PGSM staging: whole-tile sources stage once per slot here;
    // row-window sources stage in the row-loop header below.
    for s in &plan.staged_sources.clone() {
        if ctx.staging_modes[s] != StagingMode::WholeTile {
            continue;
        }
        let BufferLayout::Distributed { stored_w, stored_h, .. } = *ctx.map.layout(*s) else {
            unreachable!()
        };
        let bank_base = slot_base[s];
        let pgsm_off = ctx.pgsm_offsets[s];
        emit_staging(ctx, *s, bank_base, pgsm_off, stored_w, stored_h)?;
    }

    // === row loop over stored output rows ===
    ctx.kb.push(Instruction::SetiCrf { dst: creg(C_Y), imm: 0 });
    ctx.kb.begin_straight();
    ctx.arf_seti(A_YI, 0);
    ctx.kb.end_straight();
    let y_top = ctx.kb.label();
    ctx.kb.bind(y_top);

    // Row bases for every distinct (source, fy) pair plus the output row.
    ctx.row_bases.clear();
    ctx.kb.begin_straight();
    let a_out_row = ctx.claim_areg("output row")?;
    // out row addr = out_slot_base + yi * osw * 4
    ctx.calc(ArfOp::Mul, a_out_row, A_YI, ArfSrc::Imm((osw * 4) as i32));
    ctx.calc(ArfOp::Add, a_out_row, a_out_row, ArfSrc::Reg(areg(slot_base[&out_src])));
    let _ = obase;
    // Row-window staging: pull the rows this output row needs.
    for s in &plan.staged_sources.clone() {
        let StagingMode::RowWindow { ny, oy_min, rows } = ctx.staging_modes[s] else {
            continue;
        };
        let BufferLayout::Distributed { stored_w, halo: src_halo, .. } = *ctx.map.layout(*s) else {
            unreachable!()
        };
        let bank_base = slot_base[s];
        let pgsm_off = ctx.pgsm_offsets[s];
        let a_win = ctx.claim_areg("row-window bank base")?;
        // Window start stored row: ny·(yi − out_halo_y) + oy_min + src_hy.
        ctx.calc(ArfOp::Add, a_win, A_YI, ArfSrc::Imm(-(ohy as i32)));
        if ny != 1 {
            ctx.calc(ArfOp::Mul, a_win, a_win, ArfSrc::Imm(ny));
        }
        ctx.calc(ArfOp::Add, a_win, a_win, ArfSrc::Imm(oy_min + src_halo.1 as i32));
        ctx.calc(ArfOp::Mul, a_win, a_win, ArfSrc::Imm((stored_w * 4) as i32));
        ctx.calc(ArfOp::Add, a_win, a_win, ArfSrc::Reg(areg(bank_base)));
        let a_dst = ctx.claim_areg("row-window pgsm base")?;
        ctx.calc(ArfOp::Add, a_dst, A_PGSM_BASE, ArfSrc::Imm(pgsm_off as i32));
        for v in 0..rows * (stored_w / 4) {
            let off = (v * 16) as i32;
            let a_b = ctx.arf_temp()?;
            let a_t = ctx.arf_temp()?;
            ctx.calc(ArfOp::Add, a_b, a_win, ArfSrc::Imm(off));
            ctx.calc(ArfOp::Add, a_t, a_dst, ArfSrc::Imm(off));
            ctx.kb.push_mem(
                Instruction::LdPgsm {
                    dram_addr: AddrOperand::Indirect(areg(a_b)),
                    pgsm_addr: AddrOperand::Indirect(areg(a_t)),
                    simb_mask: ctx.mask,
                },
                MemTag::PgsmStage(*s),
            );
        }
    }
    for acc in &plan.accesses {
        emit_row_base(ctx, acc, &slot_base, ohy)?;
    }
    ctx.kb.end_straight();

    // === column loop ===
    ctx.kb.push(Instruction::SetiCrf { dst: creg(C_X), imm: 0 });
    ctx.kb.begin_straight();
    ctx.arf_seti(A_XI_EL, -(ohx as i32));
    ctx.arf_seti(A_XI_BY, 0);
    ctx.kb.end_straight();
    let x_top = ctx.kb.label();
    ctx.kb.bind(x_top);

    // --- loop body (unrolled when the stored width allows, exposing
    // independent vector computations to the reordering pass and keeping
    // several DRAM loads in flight; bounded by the virtual-register space
    // so register allocation stays spill-free) ---
    let body_cost = plan.accesses.len() * 4 + expr.size();
    let unroll: u32 = [8u32, 4, 2, 1]
        .into_iter()
        .find(|&u| osw % (4 * u) == 0 && body_cost as u32 * u <= 170)
        .unwrap_or(1);
    ctx.kb.begin_straight();
    ctx.reset_vregs();
    for k in 0..unroll {
        ctx.x_off_elems = (k * 4) as i32;
        let mut loaded: HashMap<usize, u8> = HashMap::new();
        for acc in &plan.accesses {
            let v = emit_access_load(ctx, acc, stage, ohx, ohy)?;
            loaded.insert(acc.at_index, v);
        }
        let result = emit_expr(ctx, expr, &plan, &loaded, stage, ohx)?;
        // Store.
        let a_st = ctx.arf_temp()?;
        ctx.calc(ArfOp::Add, a_st, a_out_row, ArfSrc::Reg(areg(A_XI_BY)));
        if k > 0 {
            ctx.calc(ArfOp::Add, a_st, a_st, ArfSrc::Imm((k * 16) as i32));
        }
        ctx.kb.push_mem(
            Instruction::StRf {
                dram_addr: AddrOperand::Indirect(areg(a_st)),
                drf: dreg(result),
                simb_mask: ctx.mask,
            },
            MemTag::DramBuffer(out_src),
        );
    }
    ctx.x_off_elems = 0;
    // Column-induction updates.
    ctx.calc(ArfOp::Add, A_XI_EL, A_XI_EL, ArfSrc::Imm((unroll * 4) as i32));
    ctx.calc(ArfOp::Add, A_XI_BY, A_XI_BY, ArfSrc::Imm((unroll * 16) as i32));
    ctx.kb.end_straight();

    // Column loop back-edge.
    ctx.kb.push(Instruction::CalcCrf {
        op: CrfOp::Add,
        dst: creg(C_X),
        src1: creg(C_X),
        src2: CrfSrc::Imm((unroll * 4) as i32),
    });
    ctx.kb.push(Instruction::CalcCrf {
        op: CrfOp::Lt,
        dst: creg(C_TMP),
        src1: creg(C_X),
        src2: CrfSrc::Imm(osw as i32),
    });
    ctx.kb.cjump_to(creg(C_TMP), x_top);

    // Row loop back-edge.
    ctx.kb.begin_straight();
    ctx.calc(ArfOp::Add, A_YI, A_YI, ArfSrc::Imm(1));
    ctx.kb.end_straight();
    ctx.kb.push(Instruction::CalcCrf {
        op: CrfOp::Add,
        dst: creg(C_Y),
        src1: creg(C_Y),
        src2: CrfSrc::Imm(1),
    });
    ctx.kb.push(Instruction::CalcCrf {
        op: CrfOp::Lt,
        dst: creg(C_TMP),
        src1: creg(C_Y),
        src2: CrfSrc::Imm(osh as i32),
    });
    ctx.kb.cjump_to(creg(C_TMP), y_top);

    // Slot loop back-edge.
    ctx.kb.begin_straight();
    ctx.calc(ArfOp::Add, A_SLOT, A_SLOT, ArfSrc::Imm(1));
    ctx.kb.end_straight();
    ctx.kb.push(Instruction::CalcCrf {
        op: CrfOp::Add,
        dst: creg(C_SLOT),
        src1: creg(C_SLOT),
        src2: CrfSrc::Imm(1),
    });
    ctx.kb.push(Instruction::CalcCrf {
        op: CrfOp::Lt,
        dst: creg(C_TMP),
        src1: creg(C_SLOT),
        src2: CrfSrc::Imm(slots as i32),
    });
    ctx.kb.cjump_to(creg(C_TMP), slot_top);
    let _ = oslot;
    let _ = otw;
    Ok(())
}

/// Result of access planning for a stage body.
struct AccessPlan {
    accesses: Vec<PlannedAccess>,
    sources: Vec<SourceId>,
    staged_sources: Vec<SourceId>,
}

struct PlannedAccess {
    /// Position in the expression tree (preorder index of the `At` node).
    at_index: usize,
    lowering: AccessLowering,
}

/// Walks the expression, classifying every `At` node.
fn plan_accesses(
    ctx: &StageCtx<'_>,
    stage: &FuncDef,
    expr: &Expr,
    out_halo: (u32, u32),
) -> Result<AccessPlan, CompileError> {
    let mut accesses = Vec::new();
    let mut sources = Vec::new();
    let mut staged = Vec::new();
    let mut counter = 0usize;
    plan_expr(ctx, stage, expr, out_halo, &mut counter, &mut accesses, &mut sources, &mut staged)?;
    Ok(AccessPlan { accesses, sources, staged_sources: staged })
}

#[allow(clippy::too_many_arguments)]
fn plan_expr(
    ctx: &StageCtx<'_>,
    stage: &FuncDef,
    e: &Expr,
    out_halo: (u32, u32),
    counter: &mut usize,
    out: &mut Vec<PlannedAccess>,
    sources: &mut Vec<SourceId>,
    staged: &mut Vec<SourceId>,
) -> Result<(), CompileError> {
    match e {
        Expr::At(s, cx, cy) => {
            let at_index = *counter;
            *counter += 1;
            if !sources.contains(s) {
                sources.push(*s);
            }
            let layout = ctx.map.layout(*s);
            let lowering = match layout {
                BufferLayout::Replicated { .. } => {
                    // Dynamic 1-D gather: cy must be the constant 0.
                    match analyze_coord(cy) {
                        AffineCoord::Affine { var: None, num: _, den: _, offset: 0 } => {}
                        _ => {
                            return Err(CompileError::Unsupported {
                                what: format!("gather into `{}` must use row 0", ctx.map.names[s]),
                            })
                        }
                    }
                    AccessLowering::ReplicatedGather { source: *s, index: (**cx).clone() }
                }
                BufferLayout::Distributed { halo, .. } => {
                    let halo = *halo;
                    let ax = analyze_coord(cx);
                    let ay = analyze_coord(cy);
                    let (
                        AffineCoord::Affine { var: vx, num: nx, den: dx, offset: ox },
                        AffineCoord::Affine { var: vy, num: ny, den: dy, offset: oy },
                    ) = (ax, ay)
                    else {
                        return Err(CompileError::Unsupported {
                            what: format!(
                                "non-affine access to distributed buffer `{}` in `{}`",
                                ctx.map.names[s], stage.name
                            ),
                        });
                    };
                    if vx == Some(Var::Y) || vy == Some(Var::X) {
                        return Err(CompileError::Unsupported {
                            what: format!("transposed access in `{}`", stage.name),
                        });
                    }
                    if (vx.is_none() && ctx.map.grid.tiles_x > 1)
                        || (vy.is_none() && ctx.map.grid.tiles_y > 1)
                    {
                        return Err(CompileError::Unsupported {
                            what: format!(
                                "constant global coordinate into distributed `{}` needs a 1-tile grid",
                                ctx.map.names[s]
                            ),
                        });
                    }
                    // Tile-grid compatibility: num/den must map the tile
                    // exactly onto the source's tile (checked here).
                    let (src_w, _src_h) = ctx.pipeline.extent(*s);
                    let src_tw = src_w / ctx.map.grid.tiles_x;
                    let (out_w, _) = stage.extent;
                    let out_tw = out_w / ctx.map.grid.tiles_x;
                    let (nx, dx) = if vx.is_none() { (0, 1) } else { (nx, dx) };
                    let (ny, dy) = if vy.is_none() { (0, 1) } else { (ny, dy) };
                    if vx.is_some() && nx as i64 * out_tw as i64 != dx as i64 * src_tw as i64 {
                        return Err(CompileError::Unsupported {
                            what: format!(
                                "access scale {nx}/{dx} in `{}` does not match the tile grid",
                                stage.name
                            ),
                        });
                    }
                    let unit_x = vx.is_some() && nx == 1 && dx == 1;
                    // Stored byte offset relative to the output's stored-x
                    // cursor: (x_off + src_halo - out_halo) elements. It is
                    // folded into the per-row base so the loop body pays a
                    // single address add per access.
                    let rel_off = ox + halo.0 as i32 - out_halo.0 as i32;
                    let bank_key: RowKey =
                        (*s, ny as i64, oy as i64, dy as i64, false, rel_off * 4);
                    let pgsm_key: RowKey = (*s, ny as i64, oy as i64, dy as i64, true, rel_off * 4);
                    let per_lane_key: RowKey = (*s, ny as i64, oy as i64, dy as i64, true, 0);
                    if unit_x && rel_off.rem_euclid(4) == 0 {
                        // Aligned vector load straight from the bank
                        // (unless the schedule stages this source anyway).
                        if stage.schedule.load_pgsm {
                            if !staged.contains(s) {
                                staged.push(*s);
                            }
                            AccessLowering::PgsmVector { base_key: pgsm_key, source: *s }
                        } else {
                            AccessLowering::BankVector { base_key: bank_key, source: *s }
                        }
                    } else if unit_x {
                        if !staged.contains(s) {
                            staged.push(*s);
                        }
                        AccessLowering::PgsmVector { base_key: pgsm_key, source: *s }
                    } else {
                        if !staged.contains(s) {
                            staged.push(*s);
                        }
                        AccessLowering::PgsmPerLane {
                            base_key: per_lane_key,
                            source: *s,
                            num: nx,
                            off: ox,
                            den: dx,
                            halo_bytesless: halo.0 as i32,
                        }
                    }
                }
            };
            out.push(PlannedAccess { at_index, lowering });
            // Recurse into dynamic index expressions so nested accesses
            // (e.g. the value feeding a gather) are planned too.
            plan_expr(ctx, stage, cx, out_halo, counter, out, sources, staged)?;
            plan_expr(ctx, stage, cy, out_halo, counter, out, sources, staged)?;
        }
        Expr::Bin(_, a, b) => {
            plan_expr(ctx, stage, a, out_halo, counter, out, sources, staged)?;
            plan_expr(ctx, stage, b, out_halo, counter, out, sources, staged)?;
        }
        Expr::Cast(_, inner) => {
            plan_expr(ctx, stage, inner, out_halo, counter, out, sources, staged)?
        }
        Expr::Select(c, a, b) => {
            plan_expr(ctx, stage, c, out_halo, counter, out, sources, staged)?;
            plan_expr(ctx, stage, a, out_halo, counter, out, sources, staged)?;
            plan_expr(ctx, stage, b, out_halo, counter, out, sources, staged)?;
        }
        Expr::ConstF(_) | Expr::ConstI(_) | Expr::Var(_) => {}
    }
    Ok(())
}

/// Emits the PGSM staging loop for one source (unrolled over the stored
/// tile; `ld pgsm` moves bank → PGSM without touching the DataRF).
fn emit_staging(
    ctx: &mut StageCtx<'_>,
    s: SourceId,
    bank_base: u8,
    pgsm_off: u32,
    stored_w: u32,
    stored_h: u32,
) -> Result<(), CompileError> {
    ctx.kb.begin_straight();
    let a_p = ctx.claim_areg("pgsm staging base")?;
    ctx.calc(ArfOp::Add, a_p, A_PGSM_BASE, ArfSrc::Imm(pgsm_off as i32));
    let vecs = (stored_w / 4) * stored_h;
    for v in 0..vecs {
        let off = (v * 16) as i32;
        let a_b = ctx.arf_temp()?;
        let a_t = ctx.arf_temp()?;
        ctx.calc(ArfOp::Add, a_b, bank_base, ArfSrc::Imm(off));
        ctx.calc(ArfOp::Add, a_t, a_p, ArfSrc::Imm(off));
        ctx.kb.push_mem(
            Instruction::LdPgsm {
                dram_addr: AddrOperand::Indirect(areg(a_b)),
                pgsm_addr: AddrOperand::Indirect(areg(a_t)),
                simb_mask: ctx.mask,
            },
            MemTag::PgsmStage(s),
        );
    }
    ctx.kb.end_straight();
    Ok(())
}

/// Emits the per-row base-address computation for an access (in the row
/// loop header).
fn emit_row_base(
    ctx: &mut StageCtx<'_>,
    acc: &PlannedAccess,
    slot_base: &HashMap<SourceId, u8>,
    out_halo_y: u32,
) -> Result<(), CompileError> {
    let (key, source) = match &acc.lowering {
        AccessLowering::BankVector { base_key, source, .. }
        | AccessLowering::PgsmVector { base_key, source, .. }
        | AccessLowering::PgsmPerLane { base_key, source, .. } => (*base_key, *source),
        AccessLowering::ReplicatedGather { .. } => return Ok(()),
    };
    let staged = key.4;
    let folded_off = key.5;
    if ctx.row_bases.contains_key(&key) {
        return Ok(());
    }
    let BufferLayout::Distributed { halo, stored_w, .. } = *ctx.map.layout(source) else {
        unreachable!()
    };
    let (_, ny, oy, dy) = (key.0, key.1, key.2, key.3);
    let a = ctx.claim_areg("row base")?;
    if staged {
        if let Some(StagingMode::RowWindow { oy_min, .. }) = ctx.staging_modes.get(&source).copied()
        {
            // Row-window staging: the access's row sits at a fixed offset
            // within the staged window (integer y scale guaranteed by
            // planning, so the offset is yi-independent).
            debug_assert!(dy == 1);
            let off = oy as i32 - oy_min;
            let pgsm_off = ctx.pgsm_offsets[&source];
            ctx.calc(
                ArfOp::Add,
                a,
                A_PGSM_BASE,
                ArfSrc::Imm(pgsm_off as i32 + off * (stored_w * 4) as i32 + folded_off),
            );
            ctx.row_bases.insert(key, a);
            return Ok(());
        }
    }
    // siy = (ny * (yi - out_halo_y) + oy) / dy + halo_y
    ctx.calc(ArfOp::Add, a, A_YI, ArfSrc::Imm(-(out_halo_y as i32)));
    if ny != 1 {
        ctx.calc(ArfOp::Mul, a, a, ArfSrc::Imm(ny as i32));
    }
    if oy != 0 {
        ctx.calc(ArfOp::Add, a, a, ArfSrc::Imm(oy as i32));
    }
    if dy != 1 {
        ctx.calc(ArfOp::Div, a, a, ArfSrc::Imm(dy as i32));
    }
    if halo.1 != 0 {
        ctx.calc(ArfOp::Add, a, a, ArfSrc::Imm(halo.1 as i32));
    }
    ctx.calc(ArfOp::Mul, a, a, ArfSrc::Imm((stored_w * 4) as i32));
    if staged {
        let pgsm_off = ctx.pgsm_offsets[&source];
        ctx.calc(ArfOp::Add, a, a, ArfSrc::Reg(areg(A_PGSM_BASE)));
        if pgsm_off as i32 + folded_off != 0 {
            ctx.calc(ArfOp::Add, a, a, ArfSrc::Imm(pgsm_off as i32 + folded_off));
        }
    } else {
        ctx.calc(ArfOp::Add, a, a, ArfSrc::Reg(areg(slot_base[&source])));
        if folded_off != 0 {
            ctx.calc(ArfOp::Add, a, a, ArfSrc::Imm(folded_off));
        }
    }
    ctx.row_bases.insert(key, a);
    Ok(())
}

/// Emits the load(s) of one access in the loop body; returns the virtual
/// register holding the value vector.
fn emit_access_load(
    ctx: &mut StageCtx<'_>,
    acc: &PlannedAccess,
    stage: &FuncDef,
    out_halo_x: u32,
    _out_halo_y: u32,
) -> Result<u8, CompileError> {
    match &acc.lowering {
        AccessLowering::BankVector { base_key, source } => {
            let row = ctx.row_bases[base_key];
            let a = ctx.arf_temp()?;
            ctx.calc(ArfOp::Add, a, row, ArfSrc::Reg(areg(A_XI_BY)));
            if ctx.x_off_elems != 0 {
                ctx.calc(ArfOp::Add, a, a, ArfSrc::Imm(ctx.x_off_elems * 4));
            }
            let v = ctx.vreg()?;
            ctx.kb.push_mem(
                Instruction::LdRf {
                    dram_addr: AddrOperand::Indirect(areg(a)),
                    drf: dreg(v),
                    simb_mask: ctx.mask,
                },
                MemTag::DramBuffer(*source),
            );
            Ok(v)
        }
        AccessLowering::PgsmVector { base_key, source } => {
            let row = ctx.row_bases[base_key];
            let a = ctx.arf_temp()?;
            ctx.calc(ArfOp::Add, a, row, ArfSrc::Reg(areg(A_XI_BY)));
            if ctx.x_off_elems != 0 {
                ctx.calc(ArfOp::Add, a, a, ArfSrc::Imm(ctx.x_off_elems * 4));
            }
            let v = ctx.vreg()?;
            ctx.kb.push_mem(
                Instruction::RdPgsm {
                    pgsm_addr: AddrOperand::Indirect(areg(a)),
                    drf: dreg(v),
                    simb_mask: ctx.mask,
                },
                MemTag::Pgsm(*source),
            );
            Ok(v)
        }
        AccessLowering::PgsmPerLane { base_key, source, num, off, den, halo_bytesless } => {
            let row = ctx.row_bases[base_key];
            let v = ctx.vreg()?;
            ctx.kb.push(Instruction::Reset { drf: dreg(v), simb_mask: ctx.mask });
            for l in 0..4i32 {
                let a = ctx.arf_temp()?;
                // six = (num * (xi_el + l) + off) / den + halo_x
                ctx.calc(ArfOp::Add, a, A_XI_EL, ArfSrc::Imm(l + ctx.x_off_elems));
                if *num != 1 {
                    ctx.calc(ArfOp::Mul, a, a, ArfSrc::Imm(*num));
                }
                if *off != 0 {
                    ctx.calc(ArfOp::Add, a, a, ArfSrc::Imm(*off));
                }
                if *den != 1 {
                    ctx.calc(ArfOp::Div, a, a, ArfSrc::Imm(*den));
                }
                if *halo_bytesless != 0 {
                    ctx.calc(ArfOp::Add, a, a, ArfSrc::Imm(*halo_bytesless));
                }
                ctx.calc(ArfOp::Mul, a, a, ArfSrc::Imm(4));
                ctx.calc(ArfOp::Add, a, a, ArfSrc::Reg(areg(row)));
                let t = ctx.vreg()?;
                ctx.kb.push_mem(
                    Instruction::RdPgsm {
                        pgsm_addr: AddrOperand::Indirect(areg(a)),
                        drf: dreg(t),
                        simb_mask: ctx.mask,
                    },
                    MemTag::Pgsm(*source),
                );
                // Blend lane 0 of t into lane l of v.
                ctx.comp_masked(
                    CompOp::Add,
                    DataType::F32,
                    CompMode::ScalarVector,
                    v,
                    D_ZERO,
                    t,
                    VecMask::from_bits(1 << l),
                );
            }
            Ok(v)
        }
        AccessLowering::ReplicatedGather { source, index } => {
            // 1. Evaluate the index expression as an i32 vector.
            let plan = plan_accesses(ctx, stage, index, (out_halo_x, _out_halo_y))?;
            let mut loaded = HashMap::new();
            for a in &plan.accesses {
                let v = emit_access_load(ctx, a, stage, out_halo_x, _out_halo_y)?;
                loaded.insert(a.at_index, v);
            }
            let vi = emit_expr_inner(ctx, index, &plan, &loaded, stage, out_halo_x, true)?;
            // 2. Per lane: clamp, scale to 16-byte pixels, load, blend.
            let BufferLayout::Replicated { base, extent } = *ctx.map.layout(*source) else {
                unreachable!("gather sources are replicated");
            };
            let v = ctx.vreg()?;
            ctx.kb.push(Instruction::Reset { drf: dreg(v), simb_mask: ctx.mask });
            for l in 0..4u8 {
                let a = ctx.arf_temp()?;
                ctx.kb.push(Instruction::Mov {
                    to_arf: true,
                    arf: areg(a),
                    drf: dreg(vi),
                    lane: l,
                    simb_mask: ctx.mask,
                });
                ctx.calc(ArfOp::Max, a, a, ArfSrc::Imm(0));
                ctx.calc(ArfOp::Min, a, a, ArfSrc::Imm(extent.0 as i32 - 1));
                ctx.calc(ArfOp::Mul, a, a, ArfSrc::Imm(16));
                ctx.calc(ArfOp::Add, a, a, ArfSrc::Imm(base as i32));
                let t = ctx.vreg()?;
                ctx.kb.push_mem(
                    Instruction::LdRf {
                        dram_addr: AddrOperand::Indirect(areg(a)),
                        drf: dreg(t),
                        simb_mask: ctx.mask,
                    },
                    MemTag::DramBuffer(*source),
                );
                ctx.comp_masked(
                    CompOp::Add,
                    DataType::F32,
                    CompMode::ScalarVector,
                    v,
                    D_ZERO,
                    t,
                    VecMask::from_bits(1 << l),
                );
            }
            Ok(v)
        }
    }
}

/// Emits the value computation of `expr`; `loaded` maps `At`-node preorder
/// indices to the registers produced by [`emit_access_load`].
fn emit_expr(
    ctx: &mut StageCtx<'_>,
    expr: &Expr,
    plan: &AccessPlan,
    loaded: &HashMap<usize, u8>,
    stage: &FuncDef,
    out_halo_x: u32,
) -> Result<u8, CompileError> {
    emit_expr_inner(ctx, expr, plan, loaded, stage, out_halo_x, false)
}

#[allow(clippy::too_many_arguments)]
fn emit_expr_inner(
    ctx: &mut StageCtx<'_>,
    expr: &Expr,
    plan: &AccessPlan,
    loaded: &HashMap<usize, u8>,
    stage: &FuncDef,
    out_halo_x: u32,
    as_int: bool,
) -> Result<u8, CompileError> {
    // Walk with the same preorder numbering as the plan.
    let mut counter = 0usize;
    emit_expr_rec(ctx, expr, &mut counter, plan, loaded, stage, out_halo_x, as_int)
}

#[allow(clippy::too_many_arguments, clippy::only_used_in_recursion)]
fn emit_expr_rec(
    ctx: &mut StageCtx<'_>,
    e: &Expr,
    counter: &mut usize,
    plan: &AccessPlan,
    loaded: &HashMap<usize, u8>,
    stage: &FuncDef,
    out_halo_x: u32,
    as_int: bool,
) -> Result<u8, CompileError> {
    use ipim_frontend::BinOp;
    match e {
        Expr::ConstF(c) => {
            if as_int {
                let v = ctx.vreg()?;
                ctx.seti_drf(v, (*c as i32) as u32);
                Ok(v)
            } else {
                ctx.const_reg(*c)
            }
        }
        Expr::ConstI(c) => {
            let v = ctx.vreg()?;
            if as_int {
                ctx.seti_drf(v, *c as u32);
            } else {
                ctx.seti_drf(v, (*c as f32).to_bits());
            }
            Ok(v)
        }
        Expr::Var(var) => {
            // Global coordinate vector: gx = tx*tw + xi + [0..3] (x only
            // varies per lane).
            let a = ctx.arf_temp()?;
            let (tw, th) =
                (stage.extent.0 / ctx.map.grid.tiles_x, stage.extent.1 / ctx.map.grid.tiles_y);
            let v = ctx.vreg()?;
            match var {
                Var::X => {
                    ctx.calc(ArfOp::Mul, a, A_TX, ArfSrc::Imm(tw as i32));
                    ctx.calc(ArfOp::Add, a, a, ArfSrc::Reg(areg(A_XI_EL)));
                    if ctx.x_off_elems != 0 {
                        ctx.calc(ArfOp::Add, a, a, ArfSrc::Imm(ctx.x_off_elems));
                    }
                    let s = ctx.vreg()?;
                    ctx.kb.push(Instruction::Mov {
                        to_arf: false,
                        arf: areg(a),
                        drf: dreg(s),
                        lane: 0,
                        simb_mask: ctx.mask,
                    });
                    // v = lanes + broadcast(s) (integer add).
                    ctx.comp(CompOp::Add, DataType::I32, CompMode::ScalarVector, v, D_LANES, s);
                }
                Var::Y => {
                    let hy = match ctx.map.layout(stage.source) {
                        BufferLayout::Distributed { halo, .. } => halo.1,
                        BufferLayout::Replicated { .. } => 0,
                    };
                    ctx.calc(ArfOp::Mul, a, A_TY, ArfSrc::Imm(th as i32));
                    ctx.calc(ArfOp::Add, a, a, ArfSrc::Reg(areg(A_YI)));
                    if hy != 0 {
                        ctx.calc(ArfOp::Add, a, a, ArfSrc::Imm(-(hy as i32)));
                    }
                    let s = ctx.vreg()?;
                    ctx.kb.push(Instruction::Mov {
                        to_arf: false,
                        arf: areg(a),
                        drf: dreg(s),
                        lane: 0,
                        simb_mask: ctx.mask,
                    });
                    // Broadcast the scalar to all lanes (y is uniform).
                    ctx.comp(CompOp::Add, DataType::I32, CompMode::ScalarVector, v, D_ZERO, s);
                }
            }
            if as_int {
                Ok(v)
            } else {
                let f = ctx.vreg()?;
                ctx.comp(CompOp::CvtI2F, DataType::F32, CompMode::VectorVector, f, v, v);
                Ok(f)
            }
        }
        Expr::At(_, cx, cy) => {
            let idx = *counter;
            *counter += 1;
            // Advance the counter over nested At nodes in the coordinates.
            skip_at_count(cx, counter);
            skip_at_count(cy, counter);
            let v = loaded[&idx];
            if as_int {
                let t = ctx.vreg()?;
                ctx.comp(CompOp::CvtF2I, DataType::I32, CompMode::VectorVector, t, v, v);
                Ok(t)
            } else {
                Ok(v)
            }
        }
        Expr::Bin(op, a, b) => {
            let va = emit_expr_rec(ctx, a, counter, plan, loaded, stage, out_halo_x, as_int)?;
            let vb = emit_expr_rec(ctx, b, counter, plan, loaded, stage, out_halo_x, as_int)?;
            let dtype = if as_int { DataType::I32 } else { DataType::F32 };
            let cop = match op {
                BinOp::Add => CompOp::Add,
                BinOp::Sub => CompOp::Sub,
                BinOp::Mul => CompOp::Mul,
                BinOp::Div => CompOp::Div,
                BinOp::Min => CompOp::Min,
                BinOp::Max => CompOp::Max,
                BinOp::Lt => CompOp::CmpLt,
                BinOp::Le => CompOp::CmpLe,
                BinOp::Eq => CompOp::CmpEq,
            };
            let v = ctx.vreg()?;
            ctx.comp(cop, dtype, CompMode::VectorVector, v, va, vb);
            Ok(v)
        }
        Expr::Cast(ScalarType::I32, inner) => {
            let vi = emit_expr_rec(ctx, inner, counter, plan, loaded, stage, out_halo_x, false)?;
            let v = ctx.vreg()?;
            ctx.comp(CompOp::CvtF2I, DataType::I32, CompMode::VectorVector, v, vi, vi);
            if as_int {
                Ok(v)
            } else {
                let f = ctx.vreg()?;
                ctx.comp(CompOp::CvtI2F, DataType::F32, CompMode::VectorVector, f, v, v);
                Ok(f)
            }
        }
        Expr::Cast(ScalarType::F32, inner) => {
            let v = emit_expr_rec(ctx, inner, counter, plan, loaded, stage, out_halo_x, false)?;
            if as_int {
                let t = ctx.vreg()?;
                ctx.comp(CompOp::CvtF2I, DataType::I32, CompMode::VectorVector, t, v, v);
                Ok(t)
            } else {
                Ok(v)
            }
        }
        Expr::Select(c, a, b) => {
            let vc = emit_expr_rec(ctx, c, counter, plan, loaded, stage, out_halo_x, false)?;
            let va = emit_expr_rec(ctx, a, counter, plan, loaded, stage, out_halo_x, as_int)?;
            let vb = emit_expr_rec(ctx, b, counter, plan, loaded, stage, out_halo_x, as_int)?;
            let dtype = if as_int { DataType::I32 } else { DataType::F32 };
            // blend = b + c * (a - b)
            let d = ctx.vreg()?;
            ctx.comp(CompOp::Sub, dtype, CompMode::VectorVector, d, va, vb);
            let m = ctx.vreg()?;
            ctx.comp(CompOp::Mul, dtype, CompMode::VectorVector, m, d, vc);
            let v = ctx.vreg()?;
            ctx.comp(CompOp::Add, dtype, CompMode::VectorVector, v, m, vb);
            Ok(v)
        }
    }
}

/// Advances the preorder `At` counter across a subtree.
fn skip_at_count(e: &Expr, counter: &mut usize) {
    match e {
        Expr::At(_, cx, cy) => {
            *counter += 1;
            skip_at_count(cx, counter);
            skip_at_count(cy, counter);
        }
        Expr::Bin(_, a, b) => {
            skip_at_count(a, counter);
            skip_at_count(b, counter);
        }
        Expr::Cast(_, inner) => skip_at_count(inner, counter),
        Expr::Select(c, a, b) => {
            skip_at_count(c, counter);
            skip_at_count(a, counter);
            skip_at_count(b, counter);
        }
        Expr::ConstF(_) | Expr::ConstI(_) | Expr::Var(_) => {}
    }
}
