//! Instruction reordering (paper Algorithm 1) and memory-order enforcement
//! (paper Sec. V-C, Fig. 5).
//!
//! Both passes operate on the straight-line regions of the kernel IR after
//! register allocation:
//!
//! 1. A *dependency graph* is built from true/anti/output register
//!    dependences plus conservative memory dependences between same-tagged
//!    aliasing accesses (these are correctness edges and always present).
//! 2. *Memory-order enforcement* optionally adds ordering edges chaining
//!    every DRAM access in program order — deferring bursts of consecutive
//!    memory instructions (which would clog the 16-entry DRAM request
//!    queue) and preserving the input program's row-buffer-friendly access
//!    order.
//! 3. *Reordering* list-schedules the graph: each node carries a
//!    ready-time estimate `T(v)`; ready loads whose `T` has passed are
//!    preferred, otherwise the smallest `T` wins — exposing ILP to the
//!    in-order core exactly as the paper's Algorithm 1 does, in
//!    `O(|V| log |V| + |E|)`.

use ipim_isa::Instruction;

use crate::kb::{straight_regions, Item, MemTag};

/// Latency estimates used for `T(v)` (cycles; Table III values with a
/// row-hit estimate for DRAM).
fn latency_estimate(inst: &Instruction) -> u64 {
    use ipim_isa::CompOp;
    match inst {
        Instruction::Comp { op, .. } => match op {
            CompOp::Add | CompOp::Sub => 5,
            CompOp::Mul => 6,
            CompOp::Mac => 9,
            CompOp::Div => 11,
            _ => 2,
        },
        Instruction::CalcArf { .. } | Instruction::Mov { .. } => 2,
        Instruction::LdRf { .. } | Instruction::StRf { .. } => 17, // row hit + bus
        Instruction::LdPgsm { .. } | Instruction::StPgsm { .. } => 18,
        Instruction::RdPgsm { .. } | Instruction::WrPgsm { .. } => 2,
        Instruction::RdVsm { .. } | Instruction::WrVsm { .. } => 3,
        _ => 1,
    }
}

fn is_dram(inst: &Instruction) -> bool {
    inst.accesses_dram()
}

fn is_load(inst: &Instruction) -> bool {
    matches!(inst, Instruction::LdRf { .. } | Instruction::LdPgsm { .. })
}

/// The dependency graph of one straight region.
///
/// Edges carry a latency weight: data dependences propagate the producer's
/// estimated latency into the consumer's ready time `T(v)`, while pure
/// *ordering* edges (memory-order enforcement) only force schedule order
/// (weight 1) — they must not spread the memory stream apart.
#[derive(Debug, Clone)]
pub struct DepGraph {
    /// `succ[i]` = (follower, latency weight) pairs.
    pub succ: Vec<Vec<(usize, u64)>>,
    /// Number of predecessors per node.
    pub indegree: Vec<usize>,
    /// Edge count (for complexity assertions in tests).
    pub edges: usize,
}

/// Builds the dependency graph of `block`; when `enforce_memory_order` is
/// set, DRAM accesses are additionally chained in program order.
pub fn build_dep_graph(
    block: &[(Instruction, Option<MemTag>)],
    enforce_memory_order: bool,
) -> DepGraph {
    let n = block.len();
    let mut succ: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    let mut indegree = vec![0usize; n];
    let mut edges = 0usize;
    let add_edge = |succ: &mut Vec<Vec<(usize, u64)>>,
                    indegree: &mut Vec<usize>,
                    edges: &mut usize,
                    a: usize,
                    b: usize,
                    w: u64| {
        if let Some(e) = succ[a].iter_mut().find(|(t, _)| *t == b) {
            e.1 = e.1.max(w);
            return;
        }
        succ[a].push((b, w));
        indegree[b] += 1;
        *edges += 1;
    };

    for j in 0..n {
        let (bj, tj) = &block[j];
        let rj = bj.reads();
        let wj = bj.writes();
        for (i, (bi, ti)) in block.iter().enumerate().take(j) {
            let ri = bi.reads();
            let wi = bi.writes();
            // Register dependences: RAW, WAR, WAW.
            let raw = wi.iter().any(|w| rj.contains(w));
            let war = ri.iter().any(|r| wj.contains(r));
            let waw = wi.iter().any(|w| wj.contains(w));
            // Conservative memory dependences: same tag, self-conflicting,
            // at least one write to that memory.
            let mem = match (ti, tj) {
                (Some(a), Some(b)) if a == b && a.self_conflicts() => {
                    mem_writes(bi) || mem_writes(bj)
                }
                _ => false,
            };
            if raw {
                add_edge(&mut succ, &mut indegree, &mut edges, i, j, latency_estimate(bi));
            } else if war || waw || mem {
                // Anti/output/memory dependences constrain order, not data
                // readiness.
                add_edge(&mut succ, &mut indegree, &mut edges, i, j, 1);
            }
        }
    }

    if enforce_memory_order {
        // Chain DRAM accesses of the same kind in program order (Fig. 5's
        // added edges): the load stream and the store stream each keep the
        // input program's row-buffer-friendly order, while the write buffer
        // decouples the two streams from each other.
        let mut prev_load: Option<usize> = None;
        let mut prev_store: Option<usize> = None;
        for (j, (inst, _)) in block.iter().enumerate() {
            if !is_dram(inst) {
                continue;
            }
            let prev = if is_load(inst) { &mut prev_load } else { &mut prev_store };
            if let Some(p) = *prev {
                add_edge(&mut succ, &mut indegree, &mut edges, p, j, 1);
            }
            *prev = Some(j);
        }
    }

    DepGraph { succ, indegree, edges }
}

/// Whether the instruction writes the memory named by its tag.
fn mem_writes(inst: &Instruction) -> bool {
    matches!(
        inst,
        Instruction::StRf { .. }
            | Instruction::StPgsm { .. }
            | Instruction::LdPgsm { .. } // writes the PGSM
            | Instruction::WrPgsm { .. }
            | Instruction::WrVsm { .. }
            | Instruction::SetiVsm { .. }
    )
}

/// Paper Algorithm 1: list-schedules `block` against its dependency graph,
/// returning the new order as indices into the original block.
pub fn schedule_order(block: &[(Instruction, Option<MemTag>)], graph: &DepGraph) -> Vec<usize> {
    let n = block.len();
    let mut t = vec![0u64; n];
    let mut indegree = graph.indegree.clone();
    let mut ready: Vec<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
    let mut order = Vec::with_capacity(n);
    for step in 1..=n as u64 {
        // Priority: a ready load whose T has passed, else smallest T
        // (original position breaks ties for determinism).
        let pick = ready
            .iter()
            .enumerate()
            .filter(|(_, &v)| is_load(&block[v].0) && t[v] <= step)
            .min_by_key(|(_, &v)| (t[v], v))
            .map(|(i, _)| i)
            .unwrap_or_else(|| {
                ready
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &v)| (t[v], v))
                    .map(|(i, _)| i)
                    .expect("graph is acyclic so ready is non-empty")
            });
        let v = ready.swap_remove(pick);
        t[v] = t[v].max(step);
        order.push(v);
        for &(u, w) in &graph.succ[v] {
            t[u] = t[u].max(t[v] + w);
            indegree[u] -= 1;
            if indegree[u] == 0 {
                ready.push(u);
            }
        }
    }
    order
}

/// Applies memory-order enforcement + reordering to every straight region.
pub fn reorder(items: &mut [Item], enforce_memory_order: bool) {
    for range in straight_regions(items) {
        let block: Vec<(Instruction, Option<MemTag>)> = items[range.clone()]
            .iter()
            .map(|it| match it {
                Item::Inst(i, t) => (*i, *t),
                _ => unreachable!("straight regions contain only instructions"),
            })
            .collect();
        if block.len() < 2 {
            continue;
        }
        let graph = build_dep_graph(&block, enforce_memory_order);
        let order = schedule_order(&block, &graph);
        for (slot, &src) in range.clone().zip(order.iter()) {
            items[slot] = Item::Inst(block[src].0, block[src].1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::KernelBuilder;
    use ipim_frontend::SourceId;
    use ipim_isa::{
        AddrOperand, CompMode, CompOp, DataReg, DataType, Instruction, SimbMask, VecMask,
    };

    fn mask() -> SimbMask {
        SimbMask::all(32)
    }

    fn comp(dst: u8, a: u8, b: u8) -> Instruction {
        Instruction::Comp {
            op: CompOp::Add,
            dtype: DataType::F32,
            mode: CompMode::VectorVector,
            dst: DataReg::new(dst),
            src1: DataReg::new(a),
            src2: DataReg::new(b),
            vec_mask: VecMask::ALL,
            simb_mask: mask(),
        }
    }

    fn ld(addr: u32, drf: u8) -> Instruction {
        Instruction::LdRf {
            dram_addr: AddrOperand::Imm(addr),
            drf: DataReg::new(drf),
            simb_mask: mask(),
        }
    }

    fn st(addr: u32, drf: u8) -> Instruction {
        Instruction::StRf {
            dram_addr: AddrOperand::Imm(addr),
            drf: DataReg::new(drf),
            simb_mask: mask(),
        }
    }

    fn tag(s: u32) -> Option<MemTag> {
        Some(MemTag::DramBuffer(SourceId(s)))
    }

    #[test]
    fn raw_dependences_preserved() {
        let block = vec![(ld(0, 1), tag(0)), (comp(2, 1, 1), None), (st(16, 2), tag(1))];
        let graph = build_dep_graph(&block, false);
        let order = schedule_order(&block, &graph);
        let pos = |i: usize| order.iter().position(|&v| v == i).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(2));
    }

    #[test]
    fn independent_load_hoisted_above_compute() {
        // c = a+a ; d = b+b ; ld x — the load is independent and should
        // move before at least one compute (Algorithm 1 prefers ready
        // loads).
        let block = vec![
            (comp(2, 1, 1), None),
            (comp(3, 2, 2), None),
            (comp(4, 3, 3), None),
            (ld(0, 5), tag(0)),
        ];
        let graph = build_dep_graph(&block, false);
        let order = schedule_order(&block, &graph);
        let load_pos = order.iter().position(|&v| v == 3).unwrap();
        assert!(load_pos < 3, "load should be hoisted: {order:?}");
    }

    #[test]
    fn war_and_waw_block_reordering() {
        // st reads r2; the comp after writes r2 (WAR) — order must hold.
        let block = vec![(st(0, 2), tag(0)), (comp(2, 1, 1), None)];
        let graph = build_dep_graph(&block, false);
        assert!(graph.succ[0].iter().any(|(t, _)| *t == 1));
        // WAW:
        let block = vec![(comp(2, 1, 1), None), (comp(2, 3, 3), None)];
        let graph = build_dep_graph(&block, false);
        assert!(graph.succ[0].iter().any(|(t, _)| *t == 1));
    }

    #[test]
    fn rmw_memory_conflicts_are_ordered() {
        let t = Some(MemTag::DramRmw(SourceId(7)));
        let block = vec![(ld(0, 1), t), (st(0, 1), t), (ld(0, 2), t)];
        let graph = build_dep_graph(&block, false);
        // ld→st (reg RAW + mem), st→ld (mem).
        assert!(graph.succ[1].iter().any(|(t, _)| *t == 2));
    }

    #[test]
    fn disjoint_buffer_accesses_not_ordered() {
        let block = vec![(st(0, 1), tag(0)), (st(16, 2), tag(0))];
        let graph = build_dep_graph(&block, false);
        assert!(graph.succ[0].is_empty(), "disjoint stores may reorder");
    }

    #[test]
    fn memory_order_chains_dram_accesses() {
        let block = vec![(ld(0, 1), tag(0)), (comp(3, 1, 1), None), (ld(16, 2), tag(0))];
        let without = build_dep_graph(&block, false);
        assert!(!without.succ[0].iter().any(|(t, _)| *t == 2));
        let with = build_dep_graph(&block, true);
        assert!(with.succ[0].iter().any(|(t, _)| *t == 2), "loads chained in program order");
    }

    #[test]
    fn reorder_is_a_permutation() {
        let mut kb = KernelBuilder::new();
        kb.begin_straight();
        kb.push_mem(ld(0, 1), MemTag::DramBuffer(SourceId(0)));
        kb.push_mem(ld(16, 2), MemTag::DramBuffer(SourceId(0)));
        kb.push(comp(3, 1, 2));
        kb.push_mem(st(32, 3), MemTag::DramBuffer(SourceId(1)));
        kb.end_straight();
        let mut items = kb.finish();
        let before: Vec<_> = items
            .iter()
            .filter_map(|i| match i {
                Item::Inst(inst, _) => Some(*inst),
                _ => None,
            })
            .collect();
        reorder(&mut items, true);
        let mut after: Vec<_> = items
            .iter()
            .filter_map(|i| match i {
                Item::Inst(inst, _) => Some(*inst),
                _ => None,
            })
            .collect();
        assert_eq!(after.len(), before.len());
        // Same multiset of instructions.
        let key = |i: &Instruction| format!("{i}");
        let mut b: Vec<_> = before.iter().map(key).collect();
        let mut a: Vec<_> = after.iter().map(key).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // And the store still comes last (it depends on everything).
        after.retain(|i| matches!(i, Instruction::StRf { .. }));
        assert_eq!(after.len(), 1);
    }

    #[test]
    fn schedule_handles_empty_and_single() {
        let block: Vec<(Instruction, Option<MemTag>)> = vec![];
        let graph = build_dep_graph(&block, true);
        assert!(schedule_order(&block, &graph).is_empty());
    }
}
