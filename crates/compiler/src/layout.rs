//! Data layout: how image buffers are tiled and distributed over the PE
//! hierarchy (paper Fig. 3(a)), and where each buffer lives in the banks.
//!
//! Every buffer of a pipeline shares one *tile grid*: the output stage's
//! `ipim_tile` schedule fixes `tiles_x × tiles_y`, and each buffer's tile
//! size is its own extent divided by that grid. Tile `(tx, ty)` of *every*
//! buffer lives on the same PE, so resampling stages (whose extents differ
//! by the same ratio as their tile sizes) read locally.
//!
//! Stencil halos use *overlapped tiles*: each PE stores its tile extended by
//! the halo its consumers need, and producers recompute the overlap (the
//! standard distributed-stencil trade of redundant compute for
//! communication). Host-uploaded inputs get their halo duplicated at DMA
//! time (see `ipim-core`'s upload path); device-produced buffers recompute
//! it. Dynamically-indexed buffers are instead *replicated* into every bank
//! with a 16-byte-per-pixel layout so a gathered pixel always lands in SIMD
//! lane 0.

use std::collections::HashMap;

use ipim_frontend::{footprints, FuncBody, Pipeline, SourceId};

/// The machine-wide tile grid shared by all buffers of a compiled pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileGrid {
    /// Tiles horizontally.
    pub tiles_x: u32,
    /// Tiles vertically.
    pub tiles_y: u32,
    /// Total PEs participating (tiles are dealt round-robin by linear id).
    pub total_pes: u32,
}

impl TileGrid {
    /// Total number of tiles.
    pub fn tiles(&self) -> u32 {
        self.tiles_x * self.tiles_y
    }

    /// Number of tile slots each PE must reserve (ceiling of tiles/PEs).
    pub fn slots_per_pe(&self) -> u32 {
        self.tiles().div_ceil(self.total_pes)
    }

    /// The PE (linear id) owning tile `t` and the slot it occupies there.
    pub fn owner(&self, t: u32) -> (u32, u32) {
        (t % self.total_pes, t / self.total_pes)
    }
}

/// Where and how one buffer is stored in the banks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BufferLayout {
    /// Tiled across PEs with a stored halo (f32 pixels, row-major per tile,
    /// rows padded to 16-byte vectors).
    Distributed {
        /// Byte address of slot 0 in each owning bank.
        base: u32,
        /// Tile size (excluding halo).
        tile: (u32, u32),
        /// Stored halo in pixels on each side (x, y).
        halo: (u32, u32),
        /// Stored row width in *elements* (tile + 2·halo, padded to 4).
        stored_w: u32,
        /// Stored rows (tile + 2·halo).
        stored_h: u32,
        /// Bytes per slot.
        slot_bytes: u32,
    },
    /// Full copy in every bank, 16 bytes per pixel (pixel value broadcast
    /// into all four lanes), row-major.
    Replicated {
        /// Byte address in every bank.
        base: u32,
        /// Buffer extent.
        extent: (u32, u32),
    },
}

impl BufferLayout {
    /// Byte address of pixel `(lx, ly)` relative to a tile's origin in a
    /// distributed slot (`lx`/`ly` may be negative within the halo).
    ///
    /// # Panics
    ///
    /// Panics on a replicated layout or out-of-halo coordinates.
    pub fn tile_pixel_offset(&self, slot: u32, lx: i64, ly: i64) -> u32 {
        match *self {
            BufferLayout::Distributed { base, halo, stored_w, stored_h, slot_bytes, .. } => {
                let sx = lx + halo.0 as i64;
                let sy = ly + halo.1 as i64;
                assert!(
                    sx >= 0 && (sx as u32) < stored_w && sy >= 0 && (sy as u32) < stored_h,
                    "pixel ({lx},{ly}) outside stored tile"
                );
                base + slot * slot_bytes + (sy as u32 * stored_w + sx as u32) * 4
            }
            BufferLayout::Replicated { .. } => {
                panic!("tile_pixel_offset on replicated layout")
            }
        }
    }

    /// Byte address of pixel `(x, y)` in a replicated buffer.
    ///
    /// # Panics
    ///
    /// Panics on a distributed layout.
    pub fn replicated_pixel_offset(&self, x: u32, y: u32) -> u32 {
        match *self {
            BufferLayout::Replicated { base, extent } => {
                assert!(x < extent.0 && y < extent.1, "pixel out of extent");
                base + (y * extent.0 + x) * 16
            }
            BufferLayout::Distributed { .. } => {
                panic!("replicated_pixel_offset on distributed layout")
            }
        }
    }

    /// Bytes this buffer occupies in each bank.
    pub fn bank_bytes(&self, grid: &TileGrid) -> u32 {
        match *self {
            BufferLayout::Distributed { slot_bytes, .. } => grid.slots_per_pe() * slot_bytes,
            BufferLayout::Replicated { extent, .. } => extent.0 * extent.1 * 16,
        }
    }
}

/// Error produced while planning the memory map.
#[derive(Debug, Clone, PartialEq)]
pub enum LayoutError {
    /// Extent not divisible by the tile grid.
    Indivisible {
        /// Buffer name.
        name: String,
        /// Its extent.
        extent: (u32, u32),
        /// The grid it must divide into.
        grid: (u32, u32),
    },
    /// Tile width must be a multiple of the SIMD width.
    TileNotVectorizable {
        /// Buffer name.
        name: String,
        /// Its tile width.
        tile_w: u32,
    },
    /// Buffers exceed the bank capacity.
    BankOverflow {
        /// Bytes required.
        needed: u32,
        /// Bank capacity.
        capacity: u32,
    },
    /// A dynamically indexed source is not 1-D.
    DynamicSourceNot1d {
        /// Source buffer name.
        name: String,
    },
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::Indivisible { name, extent, grid } => write!(
                f,
                "buffer `{name}` extent {extent:?} is not divisible by the {grid:?} tile grid"
            ),
            LayoutError::TileNotVectorizable { name, tile_w } => {
                write!(f, "buffer `{name}` tile width {tile_w} is not a multiple of 4")
            }
            LayoutError::BankOverflow { needed, capacity } => {
                write!(f, "buffers need {needed} bytes per bank, capacity is {capacity}")
            }
            LayoutError::DynamicSourceNot1d { name } => write!(
                f,
                "dynamically indexed source `{name}` must have extent (n, 1) to be replicated"
            ),
        }
    }
}

impl std::error::Error for LayoutError {}

/// The planned memory map of a pipeline: one layout per source.
#[derive(Debug, Clone)]
pub struct MemoryMap {
    /// The shared tile grid.
    pub grid: TileGrid,
    /// Layout of every source (inputs and root-stage outputs).
    pub buffers: HashMap<SourceId, BufferLayout>,
    /// First free byte in each bank (spill space starts here).
    pub free_base: u32,
    /// Names for error reporting and debugging.
    pub names: HashMap<SourceId, String>,
}

impl MemoryMap {
    /// Layout of `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` has no layout (not a root source).
    pub fn layout(&self, s: SourceId) -> &BufferLayout {
        &self.buffers[&s]
    }

    /// Plans the memory map for a pipeline on a machine with `total_pes`
    /// PEs and `bank_bytes` per bank.
    ///
    /// The grid derives from the *output* stage's tile schedule; halos are
    /// propagated backwards through the root stages; dynamically indexed
    /// sources are replicated.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] on indivisible extents, unvectorizable
    /// tiles, non-1-D gathered sources, or bank overflow.
    pub fn plan(pipeline: &Pipeline, total_pes: u32, bank_bytes: u32) -> Result<Self, LayoutError> {
        let out = pipeline.output();
        // The grid derives from the output stage's tile schedule; a
        // histogram output is a 1-D reduction, so its *source* extent
        // defines the spatial grid instead.
        let (ow, oh) = match out.body.as_ref() {
            Some(FuncBody::Histogram { source, .. }) => pipeline.extent(*source),
            _ => out.extent,
        };
        let (tw, th) = out.schedule.tile;
        if ow % tw != 0 || oh % th != 0 {
            return Err(LayoutError::Indivisible {
                name: out.name.clone(),
                extent: (ow, oh),
                grid: (ow.div_ceil(tw), oh.div_ceil(th)),
            });
        }
        let grid = TileGrid { tiles_x: ow / tw, tiles_y: oh / th, total_pes };

        let roots = pipeline.root_stages();

        // Classify which sources are dynamically indexed or histogram
        // results (→ replicated).
        let mut replicated: Vec<SourceId> = Vec::new();
        for stage in &roots {
            match &stage.body {
                Some(FuncBody::Pure(e)) => {
                    for fp in footprints(e) {
                        if fp.dynamic && !replicated.contains(&fp.source) {
                            replicated.push(fp.source);
                        }
                    }
                }
                Some(FuncBody::Histogram { .. }) if !replicated.contains(&stage.source) => {
                    replicated.push(stage.source);
                }
                Some(FuncBody::Histogram { .. }) => {}
                None => {}
            }
        }

        // Halo propagation, in reverse stage order. halo[s] = pixels of s
        // needed beyond each tile edge by any consumer.
        let mut halo: HashMap<SourceId, (u32, u32)> = HashMap::new();
        for stage in roots.iter().rev() {
            let (hx_out, hy_out) = *halo.get(&stage.source).unwrap_or(&(0, 0));
            let Some(FuncBody::Pure(e)) = &stage.body else { continue };
            // This stage computes its tile extended by its own stored halo.
            let (sw, sh) = stage_tile(pipeline, &grid, stage.source);
            for fp in footprints(e) {
                if replicated.contains(&fp.source) || fp.dynamic {
                    continue;
                }
                let (in_tw, in_th) = stage_tile(pipeline, &grid, fp.source);
                // Output x range [-hx_out, sw + hx_out), inclusive hi.
                let (xlo, xhi) = fp.window_x(-(hx_out as i64), (sw + hx_out) as i64 - 1);
                let (ylo, yhi) = fp.window_y(-(hy_out as i64), (sh + hy_out) as i64 - 1);
                let need_x = (-xlo).max(xhi - (in_tw as i64 - 1)).max(0) as u32;
                let need_y = (-ylo).max(yhi - (in_th as i64 - 1)).max(0) as u32;
                let e = halo.entry(fp.source).or_insert((0, 0));
                e.0 = e.0.max(need_x);
                e.1 = e.1.max(need_y);
            }
            // Histogram reads its source tile-local with no halo.
        }

        // Allocate.
        let mut buffers = HashMap::new();
        let mut names = HashMap::new();
        let mut cursor: u32 = 0;
        let mut all_sources: Vec<(SourceId, String, (u32, u32))> =
            pipeline.inputs().iter().map(|i| (i.source, i.name.clone(), i.extent)).collect();
        for stage in &roots {
            all_sources.push((stage.source, stage.name.clone(), stage.extent));
        }
        for (source, name, extent) in all_sources {
            names.insert(source, name.clone());
            let layout = if replicated.contains(&source) {
                if extent.1 != 1 {
                    return Err(LayoutError::DynamicSourceNot1d { name });
                }
                let l = BufferLayout::Replicated { base: cursor, extent };
                cursor += l.bank_bytes(&grid);
                l
            } else {
                if extent.0 % grid.tiles_x != 0 || extent.1 % grid.tiles_y != 0 {
                    return Err(LayoutError::Indivisible {
                        name,
                        extent,
                        grid: (grid.tiles_x, grid.tiles_y),
                    });
                }
                let tile = (extent.0 / grid.tiles_x, extent.1 / grid.tiles_y);
                // Vector *stores* require 4-wide tiles; only funcs are
                // stage outputs — inputs read per-lane tolerate any width.
                let is_func = pipeline.func_by_source(source).is_some();
                if is_func && !tile.0.is_multiple_of(4) {
                    return Err(LayoutError::TileNotVectorizable { name, tile_w: tile.0 });
                }
                let h = *halo.get(&source).unwrap_or(&(0, 0));
                let stored_w = (tile.0 + 2 * h.0).div_ceil(4) * 4;
                let stored_h = tile.1 + 2 * h.1;
                let slot_bytes = stored_w * stored_h * 4;
                let l = BufferLayout::Distributed {
                    base: cursor,
                    tile,
                    halo: h,
                    stored_w,
                    stored_h,
                    slot_bytes,
                };
                cursor += l.bank_bytes(&grid);
                l
            };
            buffers.insert(source, layout);
        }
        if cursor > bank_bytes {
            return Err(LayoutError::BankOverflow { needed: cursor, capacity: bank_bytes });
        }
        Ok(Self { grid, buffers, free_base: cursor, names })
    }
}

/// Tile size of `source` under the shared grid.
fn stage_tile(pipeline: &Pipeline, grid: &TileGrid, source: SourceId) -> (u32, u32) {
    let (w, h) = pipeline.extent(source);
    (w / grid.tiles_x, h / grid.tiles_y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipim_frontend::{x, y, PipelineBuilder};

    #[test]
    fn grid_and_ownership() {
        let g = TileGrid { tiles_x: 8, tiles_y: 8, total_pes: 32 };
        assert_eq!(g.tiles(), 64);
        assert_eq!(g.slots_per_pe(), 2);
        assert_eq!(g.owner(0), (0, 0));
        assert_eq!(g.owner(33), (1, 1));
    }

    #[test]
    fn blur_gets_one_pixel_halo() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 64, 64);
        let out = p.func("out", 64, 64);
        p.define(out, (input.at(x() - 1, y()) + input.at(x(), y()) + input.at(x() + 1, y())) / 3.0);
        p.schedule(out).compute_root().ipim_tile(8, 8);
        let pipe = p.build(out).unwrap();
        let map = MemoryMap::plan(&pipe, 32, 1 << 20).unwrap();
        assert_eq!(map.grid.tiles_x, 8);
        match map.layout(input.id()) {
            BufferLayout::Distributed { halo, stored_w, stored_h, .. } => {
                assert_eq!(*halo, (1, 0));
                assert_eq!(*stored_w, 12); // 8 + 2 halo, padded to 4
                assert_eq!(*stored_h, 8);
            }
            other => panic!("unexpected {other:?}"),
        }
        match map.layout(out.id()) {
            BufferLayout::Distributed { halo: (0, 0), .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn halo_accumulates_across_root_stages() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 64, 64);
        let a = p.func("a", 64, 64);
        p.define(a, (input.at(x() - 1, y()) + input.at(x() + 1, y())) / 2.0);
        p.schedule(a).compute_root().ipim_tile(8, 8);
        let b = p.func("b", 64, 64);
        p.define(b, (a.at(x() - 2, y()) + a.at(x() + 2, y())) / 2.0);
        p.schedule(b).compute_root().ipim_tile(8, 8);
        let pipe = p.build(b).unwrap();
        let map = MemoryMap::plan(&pipe, 32, 1 << 20).unwrap();
        // `a` must store a 2-pixel halo for `b`; `in` needs 2+1 = 3.
        match map.layout(a.id()) {
            BufferLayout::Distributed { halo, .. } => assert_eq!(*halo, (2, 0)),
            other => panic!("unexpected {other:?}"),
        }
        match map.layout(input.id()) {
            BufferLayout::Distributed { halo, .. } => assert_eq!(*halo, (3, 0)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn downsample_shares_the_grid() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 64, 64);
        let out = p.func("out", 32, 32);
        p.define(out, (input.at(2 * x(), y() * 2) + input.at(2 * x() + 1, y() * 2)) / 2.0);
        p.schedule(out).compute_root().ipim_tile(4, 4);
        let pipe = p.build(out).unwrap();
        let map = MemoryMap::plan(&pipe, 32, 1 << 20).unwrap();
        assert_eq!((map.grid.tiles_x, map.grid.tiles_y), (8, 8));
        match map.layout(input.id()) {
            BufferLayout::Distributed { tile, .. } => assert_eq!(*tile, (8, 8)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dynamic_gather_source_replicated() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 16, 16);
        let lut = p.input("lut", 64, 1);
        let out = p.func("out", 16, 16);
        p.define(out, lut.at(input.at(x(), y()).cast_i32(), 0));
        p.schedule(out).compute_root().ipim_tile(4, 4);
        let pipe = p.build(out).unwrap();
        let map = MemoryMap::plan(&pipe, 32, 1 << 20).unwrap();
        match map.layout(lut.id()) {
            BufferLayout::Replicated { extent, .. } => assert_eq!(*extent, (64, 1)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dynamic_2d_source_rejected() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 16, 16);
        let tbl = p.input("tbl", 16, 16);
        let out = p.func("out", 16, 16);
        p.define(out, tbl.at(input.at(x(), y()).cast_i32(), y()));
        p.schedule(out).compute_root().ipim_tile(4, 4);
        let pipe = p.build(out).unwrap();
        assert!(matches!(
            MemoryMap::plan(&pipe, 32, 1 << 20),
            Err(LayoutError::DynamicSourceNot1d { .. })
        ));
    }

    #[test]
    fn indivisible_extent_rejected() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 60, 64);
        let out = p.func("out", 60, 64);
        p.define(out, input.at(x(), y()));
        p.schedule(out).compute_root().ipim_tile(8, 8);
        let pipe = p.build(out).unwrap();
        assert!(matches!(
            MemoryMap::plan(&pipe, 32, 1 << 20),
            Err(LayoutError::Indivisible { .. })
        ));
    }

    #[test]
    fn bank_overflow_detected() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 64, 64);
        let out = p.func("out", 64, 64);
        p.define(out, input.at(x(), y()));
        p.schedule(out).compute_root().ipim_tile(8, 8);
        let pipe = p.build(out).unwrap();
        assert!(matches!(MemoryMap::plan(&pipe, 32, 100), Err(LayoutError::BankOverflow { .. })));
    }

    #[test]
    fn pixel_offsets_within_slot() {
        let l = BufferLayout::Distributed {
            base: 1024,
            tile: (8, 8),
            halo: (1, 1),
            stored_w: 12,
            stored_h: 10,
            slot_bytes: 480,
        };
        assert_eq!(l.tile_pixel_offset(0, -1, -1), 1024);
        assert_eq!(l.tile_pixel_offset(0, 0, 0), 1024 + (12 + 1) * 4);
        assert_eq!(l.tile_pixel_offset(1, -1, -1), 1024 + 480);
        let r = BufferLayout::Replicated { base: 0, extent: (64, 1) };
        assert_eq!(r.replicated_pixel_offset(3, 0), 48);
    }
}
