//! Histogram-reduction codegen: "a reduction of parallel reduced partial
//! histogram results" (paper Sec. VII-B).
//!
//! Phases, separated by `sync` barriers where cross-vault ordering matters:
//!
//! 1. **Zero** — every PE clears its partial histogram (16 B/bin in its own
//!    bank).
//! 2. **Accumulate** — every PE walks its tiles of the source (staged
//!    through the PGSM), bins each pixel with SIMD arithmetic, and
//!    increments its partial with a data-dependent read-modify-write
//!    (`mov drf→arf` indexing, the paper's flexible-indexing path).
//! 3. **PG reduce** — partials move bank→PGSM (`ld pgsm`), then PE 0 of
//!    each PG sums its group's four partials and posts the PG partial to
//!    the VSM.
//! 4. **Vault reduce** — PE 0 of PG 0 sums the eight PG partials from the
//!    VSM and packs the vault partial (4 bins/vector) into its bank.
//! 5. **All-gather** — after a `sync`, every vault `req`s every vault's
//!    packed partial into its VSM (static target addresses, so the SPMD
//!    program needs no vault-dependent control flow).
//! 6. **Finalize** — PE 0 sums the gathered partials and stores the final
//!    histogram in the replicated 16-byte-per-bin layout of the output
//!    buffer (host readback uses vault 0's first bank).

use ipim_frontend::SourceId;
use ipim_isa::{
    AddrOperand, ArfOp, ArfSrc, CompMode, CompOp, CrfSrc, DataType, Instruction, RemoteTarget,
    SimbMask, VecMask,
};

use crate::codegen::{StageCtx, D_ONE, D_ZERO};
use crate::kb::MemTag;
use crate::layout::BufferLayout;
use crate::CompileError;

/// VSM byte offset where PG partials are posted (16 B/bin per PG).
const VSM_PG_PARTIALS: u32 = 0x1000;
/// VSM byte offset where remote vault partials are gathered (packed).
const VSM_GATHER: u32 = 0x10000;

/// Scratch DRAM the histogram needs per bank, given `bins` (per-PE
/// partials live in the PGSM; only the packed vault partial — the `req`
/// target — needs a bank home).
pub fn scratch_bytes(bins: u32) -> u32 {
    bins * 4
}

/// Emits a histogram stage.
///
/// `scratch_base` is the per-bank DRAM address of this stage's scratch
/// (see [`scratch_bytes`]); `machine_vaults` is cubes × vaults-per-cube.
#[allow(clippy::too_many_arguments)]
pub fn emit_histogram_stage(
    ctx: &mut StageCtx<'_>,
    out: SourceId,
    source: SourceId,
    bins: u32,
    min: f32,
    max: f32,
    scratch_base: u32,
    machine_vaults: u32,
    sync_phase: &mut u32,
) -> Result<(), CompileError> {
    if !bins.is_multiple_of(4) || bins == 0 {
        return Err(CompileError::Unsupported {
            what: format!("histogram bins ({bins}) must be a positive multiple of 4"),
        });
    }
    let pes_per_pg = ctx.facts.pes_per_pg;
    let pes_per_vault = ctx.facts.pes_per_vault;
    let pgs = pes_per_vault / pes_per_pg;
    let width = pes_per_vault as usize;
    let mask_all = SimbMask::all(width);
    let mut mask_pg_leads = SimbMask::none(width);
    for pg in 0..pgs {
        mask_pg_leads.set((pg * pes_per_pg) as usize).expect("in range");
    }
    let mask_lead = SimbMask::single(width, 0).expect("in range");

    let packed_base = scratch_base;

    let BufferLayout::Distributed {
        tile: (tw, th),
        halo: (shx, shy),
        stored_w,
        stored_h,
        slot_bytes,
        base: src_base,
    } = *ctx.map.layout(source)
    else {
        return Err(CompileError::Unsupported {
            what: "histogram source must be a distributed buffer".into(),
        });
    };
    let BufferLayout::Replicated { base: out_base, .. } = *ctx.map.layout(out) else {
        return Err(CompileError::Unsupported {
            what: "histogram output must be replicated".into(),
        });
    };

    // PGSM budget: the staged source tile plus the per-PE partial
    // histogram (16 B/bin, kept in the scratchpad so the per-pixel
    // read-modify-write costs scratchpad, not DRAM, latency — the paper's
    // "reduction of parallel reduced partial histograms").
    let share = ctx.facts.pgsm_bytes / pes_per_pg;
    let staged_bytes = stored_w * stored_h * 4;
    let partial_off = share - bins * 16;
    if staged_bytes + bins * 16 > share {
        return Err(CompileError::Unsupported {
            what: format!(
                "histogram tile + partials ({} B) exceed the PGSM share ({share} B)",
                staged_bytes + bins * 16
            ),
        });
    }
    // This PE's partial-histogram base in the PGSM.
    let a_part = ctx.claim_areg("hist partial base")?;

    // ---- Phase 1: zero partials (all PEs, in the PGSM). ----
    ctx.kb.begin_straight();
    ctx.kb.push(Instruction::CalcArf {
        op: ArfOp::Mul,
        dst: ipim_isa::AddrReg::new(a_part),
        src1: ipim_isa::ARF_PE_ID,
        src2: ArfSrc::Imm(share as i32),
        simb_mask: mask_all,
    });
    ctx.calc(ArfOp::Add, a_part, a_part, ArfSrc::Imm(partial_off as i32));
    for c in 0..bins {
        let a_t = ctx.arf_temp()?;
        ctx.calc(ArfOp::Add, a_t, a_part, ArfSrc::Imm((c * 16) as i32));
        ctx.kb.push_mem(
            Instruction::WrPgsm {
                pgsm_addr: AddrOperand::Indirect(ipim_isa::AddrReg::new(a_t)),
                drf: ipim_isa::DataReg::new(D_ZERO),
                simb_mask: mask_all,
            },
            MemTag::Pgsm(out),
        );
    }
    ctx.kb.end_straight();

    // ---- Phase 2: accumulate over this PE's tiles. ----
    let grid = ctx.map.grid;
    let slots = grid.slots_per_pe();
    let scale = bins as f32 / (max - min);
    let c_slot = ipim_isa::CtrlReg::new(4);
    let c_row = ipim_isa::CtrlReg::new(5);
    let c_col = ipim_isa::CtrlReg::new(6);
    let c_tmp = ipim_isa::CtrlReg::new(7);
    let a_slotbase = ctx.claim_areg("hist src slot base")?;
    let a_pgsm = ctx.claim_areg("hist pgsm base")?;
    let a_row = ctx.claim_areg("hist row ptr")?;
    let a_col = ctx.claim_areg("hist col ptr")?;

    let a_slotidx = ctx.claim_areg("hist slot idx")?;
    ctx.kb.push(Instruction::SetiCrf { dst: c_slot, imm: 0 });
    ctx.kb.begin_straight();
    ctx.arf_seti(a_slotidx, 0);
    ctx.kb.end_straight();
    let slot_top = ctx.kb.label();
    ctx.kb.bind(slot_top);
    // Slot base from the slot-index mirror, plus PGSM staging.
    ctx.kb.begin_straight();
    ctx.calc(ArfOp::Mul, a_slotbase, a_slotidx, ArfSrc::Imm(slot_bytes as i32));
    ctx.calc(ArfOp::Add, a_slotbase, a_slotbase, ArfSrc::Imm(src_base as i32));
    ctx.kb.push(Instruction::CalcArf {
        op: ArfOp::Mul,
        dst: ipim_isa::AddrReg::new(a_pgsm),
        src1: ipim_isa::ARF_PE_ID,
        src2: ArfSrc::Imm(share as i32),
        simb_mask: mask_all,
    });
    // Stage the stored tile.
    for v in 0..(stored_w / 4) * stored_h {
        let off = (v * 16) as i32;
        let a_b = ctx.arf_temp()?;
        let a_p = ctx.arf_temp()?;
        ctx.calc(ArfOp::Add, a_b, a_slotbase, ArfSrc::Imm(off));
        ctx.calc(ArfOp::Add, a_p, a_pgsm, ArfSrc::Imm(off));
        ctx.kb.push_mem(
            Instruction::LdPgsm {
                dram_addr: AddrOperand::Indirect(ipim_isa::AddrReg::new(a_b)),
                pgsm_addr: AddrOperand::Indirect(ipim_isa::AddrReg::new(a_p)),
                simb_mask: mask_all,
            },
            MemTag::PgsmStage(source),
        );
    }
    ctx.kb.end_straight();

    // Row loop over the *core* tile region.
    ctx.kb.push(Instruction::SetiCrf { dst: c_row, imm: 0 });
    ctx.kb.begin_straight();
    // a_row = pgsm + (row + shy) * stored_w*4 + shx*4, maintained
    // incrementally: initialize here.
    ctx.calc(ArfOp::Mul, a_row, a_row, ArfSrc::Imm(0));
    ctx.calc(ArfOp::Add, a_row, a_row, ArfSrc::Imm((shy * stored_w * 4 + shx * 4) as i32));
    ctx.calc(ArfOp::Add, a_row, a_row, ArfSrc::Reg(ipim_isa::AddrReg::new(a_pgsm)));
    ctx.kb.end_straight();
    let row_top = ctx.kb.label();
    ctx.kb.bind(row_top);

    // Column loop.
    ctx.kb.push(Instruction::SetiCrf { dst: c_col, imm: 0 });
    ctx.kb.begin_straight();
    ctx.calc(ArfOp::Mul, a_col, a_col, ArfSrc::Imm(0));
    ctx.calc(ArfOp::Add, a_col, a_col, ArfSrc::Reg(ipim_isa::AddrReg::new(a_row)));
    ctx.kb.end_straight();
    let col_top = ctx.kb.label();
    ctx.kb.bind(col_top);

    ctx.kb.begin_straight();
    ctx.reset_vregs();
    // Load 4 pixels, compute bins = clamp(i32((v - min) * scale), 0, B-1).
    let v_px = ctx.vreg()?;
    ctx.kb.push_mem(
        Instruction::RdPgsm {
            pgsm_addr: AddrOperand::Indirect(ipim_isa::AddrReg::new(a_col)),
            drf: ipim_isa::DataReg::new(v_px),
            simb_mask: mask_all,
        },
        MemTag::Pgsm(source),
    );
    let v_min = ctx.const_reg(min)?;
    let v_scale = ctx.const_reg(scale)?;
    let v_t = ctx.vreg()?;
    ctx.comp(CompOp::Sub, DataType::F32, CompMode::VectorVector, v_t, v_px, v_min);
    let v_s = ctx.vreg()?;
    ctx.comp(CompOp::Mul, DataType::F32, CompMode::VectorVector, v_s, v_t, v_scale);
    let v_b = ctx.vreg()?;
    ctx.comp(CompOp::CvtF2I, DataType::I32, CompMode::VectorVector, v_b, v_s, v_s);
    // Clamp with integer min/max against pinned int constants.
    let v_zero_i = ctx.vreg()?;
    ctx.kb.push(Instruction::SetiDrf {
        drf: ipim_isa::DataReg::new(v_zero_i),
        imm: 0,
        vec_mask: VecMask::ALL,
        simb_mask: mask_all,
    });
    let v_maxb = ctx.vreg()?;
    ctx.kb.push(Instruction::SetiDrf {
        drf: ipim_isa::DataReg::new(v_maxb),
        imm: bins - 1,
        vec_mask: VecMask::ALL,
        simb_mask: mask_all,
    });
    let v_cl = ctx.vreg()?;
    ctx.comp(CompOp::Max, DataType::I32, CompMode::VectorVector, v_cl, v_b, v_zero_i);
    let v_bin = ctx.vreg()?;
    ctx.comp(CompOp::Min, DataType::I32, CompMode::VectorVector, v_bin, v_cl, v_maxb);
    // Per-lane read-modify-write increment of the partial histogram.
    for l in 0..4u8 {
        let a = ctx.arf_temp()?;
        ctx.kb.push(Instruction::Mov {
            to_arf: true,
            arf: ipim_isa::AddrReg::new(a),
            drf: ipim_isa::DataReg::new(v_bin),
            lane: l,
            simb_mask: mask_all,
        });
        ctx.calc(ArfOp::Mul, a, a, ArfSrc::Imm(16));
        ctx.calc(ArfOp::Add, a, a, ArfSrc::Reg(ipim_isa::AddrReg::new(a_part)));
        let v_h = ctx.vreg()?;
        ctx.kb.push_mem(
            Instruction::RdPgsm {
                pgsm_addr: AddrOperand::Indirect(ipim_isa::AddrReg::new(a)),
                drf: ipim_isa::DataReg::new(v_h),
                simb_mask: mask_all,
            },
            MemTag::Pgsm(out),
        );
        ctx.kb.push(Instruction::Comp {
            op: CompOp::Add,
            dtype: DataType::F32,
            mode: CompMode::VectorVector,
            dst: ipim_isa::DataReg::new(v_h),
            src1: ipim_isa::DataReg::new(v_h),
            src2: ipim_isa::DataReg::new(D_ONE),
            vec_mask: VecMask::from_bits(0b0001),
            simb_mask: mask_all,
        });
        ctx.kb.push_mem(
            Instruction::WrPgsm {
                pgsm_addr: AddrOperand::Indirect(ipim_isa::AddrReg::new(a)),
                drf: ipim_isa::DataReg::new(v_h),
                simb_mask: mask_all,
            },
            MemTag::Pgsm(out),
        );
    }
    ctx.calc(ArfOp::Add, a_col, a_col, ArfSrc::Imm(16));
    ctx.kb.end_straight();
    // Column back-edge.
    ctx.kb.push(Instruction::CalcCrf {
        op: ipim_isa::CrfOp::Add,
        dst: c_col,
        src1: c_col,
        src2: CrfSrc::Imm(4),
    });
    ctx.kb.push(Instruction::CalcCrf {
        op: ipim_isa::CrfOp::Lt,
        dst: c_tmp,
        src1: c_col,
        src2: CrfSrc::Imm(tw as i32),
    });
    ctx.kb.cjump_to(c_tmp, col_top);
    // Row back-edge.
    ctx.kb.begin_straight();
    ctx.calc(ArfOp::Add, a_row, a_row, ArfSrc::Imm((stored_w * 4) as i32));
    ctx.kb.end_straight();
    ctx.kb.push(Instruction::CalcCrf {
        op: ipim_isa::CrfOp::Add,
        dst: c_row,
        src1: c_row,
        src2: CrfSrc::Imm(1),
    });
    ctx.kb.push(Instruction::CalcCrf {
        op: ipim_isa::CrfOp::Lt,
        dst: c_tmp,
        src1: c_row,
        src2: CrfSrc::Imm(th as i32),
    });
    ctx.kb.cjump_to(c_tmp, row_top);
    // Slot back-edge.
    ctx.kb.begin_straight();
    ctx.calc(ArfOp::Add, a_slotidx, a_slotidx, ArfSrc::Imm(1));
    ctx.kb.end_straight();
    ctx.kb.push(Instruction::CalcCrf {
        op: ipim_isa::CrfOp::Add,
        dst: c_slot,
        src1: c_slot,
        src2: CrfSrc::Imm(1),
    });
    ctx.kb.push(Instruction::CalcCrf {
        op: ipim_isa::CrfOp::Lt,
        dst: c_tmp,
        src1: c_slot,
        src2: CrfSrc::Imm(slots as i32),
    });
    ctx.kb.cjump_to(c_tmp, slot_top);

    // ---- Phase 3: PG reduce (partials are already in the PGSM). ----
    // PG leads sum the four partials and post to the VSM.
    ctx.kb.begin_straight();
    for c in 0..bins {
        ctx.reset_vregs();
        let acc = ctx.vreg()?;
        ctx.kb.push(Instruction::Reset {
            drf: ipim_isa::DataReg::new(acc),
            simb_mask: mask_pg_leads,
        });
        for p in 0..pes_per_pg {
            let t = ctx.vreg()?;
            ctx.kb.push_mem(
                Instruction::RdPgsm {
                    pgsm_addr: AddrOperand::Imm(p * share + partial_off + c * 16),
                    drf: ipim_isa::DataReg::new(t),
                    simb_mask: mask_pg_leads,
                },
                MemTag::Pgsm(out),
            );
            ctx.kb.push(Instruction::Comp {
                op: CompOp::Add,
                dtype: DataType::F32,
                mode: CompMode::VectorVector,
                dst: ipim_isa::DataReg::new(acc),
                src1: ipim_isa::DataReg::new(acc),
                src2: ipim_isa::DataReg::new(t),
                vec_mask: VecMask::ALL,
                simb_mask: mask_pg_leads,
            });
        }
        // VSM address depends on pgID: a = pg * bins*16 + c*16 + base.
        let a = ctx.arf_temp()?;
        ctx.kb.push(Instruction::CalcArf {
            op: ArfOp::Mul,
            dst: ipim_isa::AddrReg::new(a),
            src1: ipim_isa::ARF_PG_ID,
            src2: ArfSrc::Imm((bins * 16) as i32),
            simb_mask: mask_pg_leads,
        });
        ctx.calc_masked(
            ArfOp::Add,
            a,
            a,
            ArfSrc::Imm((VSM_PG_PARTIALS + c * 16) as i32),
            mask_pg_leads,
        );
        ctx.kb.push_mem(
            Instruction::WrVsm {
                vsm_addr: AddrOperand::Indirect(ipim_isa::AddrReg::new(a)),
                drf: ipim_isa::DataReg::new(acc),
                simb_mask: mask_pg_leads,
            },
            MemTag::Vsm,
        );
    }
    ctx.kb.end_straight();

    // ---- Phase 4: vault reduce + pack (vault lead PE only). ----
    ctx.kb.begin_straight();
    for k in 0..bins / 4 {
        ctx.reset_vregs();
        let packed = ctx.vreg()?;
        ctx.kb
            .push(Instruction::Reset { drf: ipim_isa::DataReg::new(packed), simb_mask: mask_lead });
        for l in 0..4u32 {
            let c = k * 4 + l;
            let acc = ctx.vreg()?;
            ctx.kb.push(Instruction::Reset {
                drf: ipim_isa::DataReg::new(acc),
                simb_mask: mask_lead,
            });
            for pg in 0..pgs {
                let t = ctx.vreg()?;
                ctx.kb.push_mem(
                    Instruction::RdVsm {
                        vsm_addr: AddrOperand::Imm(VSM_PG_PARTIALS + pg * bins * 16 + c * 16),
                        drf: ipim_isa::DataReg::new(t),
                        simb_mask: mask_lead,
                    },
                    MemTag::Vsm,
                );
                ctx.kb.push(Instruction::Comp {
                    op: CompOp::Add,
                    dtype: DataType::F32,
                    mode: CompMode::VectorVector,
                    dst: ipim_isa::DataReg::new(acc),
                    src1: ipim_isa::DataReg::new(acc),
                    src2: ipim_isa::DataReg::new(t),
                    vec_mask: VecMask::from_bits(0b0001),
                    simb_mask: mask_lead,
                });
            }
            // Blend acc.lane0 into packed.lane l.
            ctx.kb.push(Instruction::Comp {
                op: CompOp::Add,
                dtype: DataType::F32,
                mode: CompMode::ScalarVector,
                dst: ipim_isa::DataReg::new(packed),
                src1: ipim_isa::DataReg::new(D_ZERO),
                src2: ipim_isa::DataReg::new(acc),
                vec_mask: VecMask::from_bits(1 << l),
                simb_mask: mask_lead,
            });
        }
        ctx.kb.push_mem(
            Instruction::StRf {
                dram_addr: AddrOperand::Imm(packed_base + k * 16),
                drf: ipim_isa::DataReg::new(packed),
                simb_mask: mask_lead,
            },
            MemTag::DramRmw(out),
        );
    }
    ctx.kb.end_straight();

    // ---- Phase 5: barrier, then all-gather vault partials. ----
    ctx.kb.push(Instruction::Sync { phase_id: *sync_phase });
    *sync_phase += 1;
    let vpc = ctx.facts.vaults_per_cube;
    for v in 0..machine_vaults {
        for k in 0..bins / 4 {
            ctx.kb.push_mem(
                Instruction::Req {
                    target: RemoteTarget {
                        chip: (v / vpc) as u8,
                        vault: (v % vpc) as u8,
                        pg: 0,
                        pe: 0,
                    },
                    dram_addr: CrfSrc::Imm((packed_base + k * 16) as i32),
                    vsm_addr: CrfSrc::Imm((VSM_GATHER + (v * (bins / 4) + k) * 16) as i32),
                },
                MemTag::Vsm,
            );
        }
    }

    // ---- Phase 6: finalize on the vault lead; store replicated layout. ----
    ctx.kb.begin_straight();
    for k in 0..bins / 4 {
        ctx.reset_vregs();
        let acc = ctx.vreg()?;
        ctx.kb.push(Instruction::Reset { drf: ipim_isa::DataReg::new(acc), simb_mask: mask_lead });
        for v in 0..machine_vaults {
            let t = ctx.vreg()?;
            ctx.kb.push_mem(
                Instruction::RdVsm {
                    vsm_addr: AddrOperand::Imm(VSM_GATHER + (v * (bins / 4) + k) * 16),
                    drf: ipim_isa::DataReg::new(t),
                    simb_mask: mask_lead,
                },
                MemTag::Vsm,
            );
            ctx.kb.push(Instruction::Comp {
                op: CompOp::Add,
                dtype: DataType::F32,
                mode: CompMode::VectorVector,
                dst: ipim_isa::DataReg::new(acc),
                src1: ipim_isa::DataReg::new(acc),
                src2: ipim_isa::DataReg::new(t),
                vec_mask: VecMask::ALL,
                simb_mask: mask_lead,
            });
        }
        // Expand each packed lane into the 16-byte-per-bin output layout.
        for l in 0..4u8 {
            let a = ctx.arf_temp()?;
            ctx.kb.push(Instruction::Mov {
                to_arf: true,
                arf: ipim_isa::AddrReg::new(a),
                drf: ipim_isa::DataReg::new(acc),
                lane: l,
                simb_mask: mask_lead,
            });
            let rep = ctx.vreg()?;
            for tl in 0..4u8 {
                ctx.kb.push(Instruction::Mov {
                    to_arf: false,
                    arf: ipim_isa::AddrReg::new(a),
                    drf: ipim_isa::DataReg::new(rep),
                    lane: tl,
                    simb_mask: mask_lead,
                });
            }
            let bin = k * 4 + l as u32;
            ctx.kb.push_mem(
                Instruction::StRf {
                    dram_addr: AddrOperand::Imm(out_base + bin * 16),
                    drf: ipim_isa::DataReg::new(rep),
                    simb_mask: mask_lead,
                },
                MemTag::DramBuffer(out),
            );
        }
    }
    ctx.kb.end_straight();
    ctx.kb.push(Instruction::Sync { phase_id: *sync_phase });
    *sync_phase += 1;
    Ok(())
}
