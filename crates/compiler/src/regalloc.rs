//! Register allocation (paper Sec. V-C, "Register Allocation").
//!
//! Codegen emits *virtual* data registers: indices `>= pinned` within each
//! straight-line region, in SSA-like ascending order. This pass maps them to
//! the physical DataRF under one of two policies:
//!
//! * [`RegAllocPolicy::Min`] — reuse the lowest-numbered free register, the
//!   textbook minimize-register-count allocation. On iPIM's in-order core
//!   this creates WAR/WAW dependences against long-latency in-flight
//!   instructions and stalls issue (the paper's `baseline2`).
//! * [`RegAllocPolicy::Max`] — scatter allocations round-robin over the
//!   whole file so a freed register is reused as late as possible,
//!   eliminating output- and anti-dependences (the paper's `opt`, 2.59×
//!   faster).
//!
//! When a region needs more registers than the file provides, the longest
//! live ranges are *demoted* to DRAM spill slots (`st rf`/`ld rf` to
//! reserved bank addresses), which is how the paper's RF-size sensitivity
//! (Fig. 10(a)) loses performance at 16–32 registers.

use std::collections::{BTreeSet, HashMap, VecDeque};

use ipim_isa::{AddrOperand, DataReg, Instruction, RegRef};

use crate::kb::{straight_regions, Item, MemTag};

/// Allocation policy (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RegAllocPolicy {
    /// Minimize register count (maximal immediate reuse).
    Min,
    /// Maximize reuse distance (the paper's optimization).
    #[default]
    Max,
}

/// Error produced by register allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegAllocError {
    /// A virtual register is used before being defined in its region.
    UseBeforeDef {
        /// The virtual register index.
        vreg: u8,
    },
    /// Even after spilling, the region cannot fit the register file.
    TooFewRegisters {
        /// Registers available for temporaries.
        available: usize,
    },
}

impl std::fmt::Display for RegAllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegAllocError::UseBeforeDef { vreg } => {
                write!(f, "virtual register v{vreg} used before definition")
            }
            RegAllocError::TooFewRegisters { available } => {
                write!(f, "register file too small: only {available} temporaries available")
            }
        }
    }
}

impl std::error::Error for RegAllocError {}

/// Runs register allocation over every straight region of `items`.
///
/// `pinned` low registers are identity-mapped (long-lived constants and
/// accumulators managed by codegen); `rf_size` is the DataRF entry count;
/// `spill_base` is the bank byte address where spill slots may be placed
/// (16 bytes each).
///
/// Returns the number of spill slots used.
///
/// # Errors
///
/// Returns [`RegAllocError`] on malformed virtual code or an impossibly
/// small register file.
pub fn allocate(
    items: &mut Vec<Item>,
    pinned: u8,
    rf_size: usize,
    spill_base: u32,
    policy: RegAllocPolicy,
) -> Result<u32, RegAllocError> {
    let mut spill_slots = 0u32;
    // Regions shift as spill code is inserted; process by scanning anew
    // after each region (regions never nest and markers are preserved).
    let mut region_idx = 0;
    loop {
        let regions = straight_regions(items);
        let Some(range) = regions.get(region_idx).cloned() else { break };
        let used =
            allocate_region(items, range, pinned, rf_size, spill_base, &mut spill_slots, policy)?;
        let _ = used;
        region_idx += 1;
    }
    Ok(spill_slots)
}

/// Virtual data registers read/written by an instruction (index >= pinned).
fn vregs_of(inst: &Instruction, pinned: u8) -> (Vec<u8>, Vec<u8>) {
    let reads = inst
        .reads()
        .into_iter()
        .filter_map(|r| match r {
            RegRef::Data(d) if d.index() >= pinned as usize => Some(d.index() as u8),
            _ => None,
        })
        .collect();
    let writes = inst
        .writes()
        .into_iter()
        .filter_map(|r| match r {
            RegRef::Data(d) if d.index() >= pinned as usize => Some(d.index() as u8),
            _ => None,
        })
        .collect();
    (reads, writes)
}

/// Rewrites the virtual data-register fields of an instruction.
fn map_regs(inst: &mut Instruction, pinned: u8, map: &HashMap<u8, u8>) {
    let f = |r: &mut DataReg| {
        if r.index() >= pinned as usize {
            let v = r.index() as u8;
            let p = map.get(&v).copied().unwrap_or(v);
            *r = DataReg::new(p);
        }
    };
    match inst {
        Instruction::Comp { dst, src1, src2, .. } => {
            f(dst);
            f(src1);
            f(src2);
        }
        Instruction::StRf { drf, .. }
        | Instruction::LdRf { drf, .. }
        | Instruction::RdPgsm { drf, .. }
        | Instruction::WrPgsm { drf, .. }
        | Instruction::RdVsm { drf, .. }
        | Instruction::WrVsm { drf, .. }
        | Instruction::Mov { drf, .. }
        | Instruction::Reset { drf, .. }
        | Instruction::SetiDrf { drf, .. } => f(drf),
        _ => {}
    }
}

#[allow(clippy::too_many_arguments)]
fn allocate_region(
    items: &mut Vec<Item>,
    range: std::ops::Range<usize>,
    pinned: u8,
    rf_size: usize,
    spill_base: u32,
    spill_slots: &mut u32,
    policy: RegAllocPolicy,
) -> Result<usize, RegAllocError> {
    let available = rf_size.saturating_sub(pinned as usize);
    if available == 0 {
        return Err(RegAllocError::TooFewRegisters { available });
    }

    // 1. Spill pre-pass: demote one long live range, then retry the whole
    // region (the range is stale after insertion); recursion repeats until
    // max pressure fits.
    let pressure = max_pressure(items, range.clone(), pinned)?;
    if pressure > available {
        if !demote_one(items, range.clone(), pinned, spill_base, spill_slots) {
            return Err(RegAllocError::TooFewRegisters { available });
        }
        return allocate_region(
            items,
            current_region(items, range.start),
            pinned,
            rf_size,
            spill_base,
            spill_slots,
            policy,
        );
    }

    // 2. Liveness (last use per vreg).
    let mut last_use: HashMap<u8, usize> = HashMap::new();
    for i in range.clone() {
        if let Item::Inst(inst, _) = &items[i] {
            let (reads, writes) = vregs_of(inst, pinned);
            for v in reads.iter().chain(writes.iter()) {
                last_use.insert(*v, i);
            }
        }
    }

    // 3. Linear scan.
    let mut free_min: BTreeSet<u8> = (pinned..rf_size as u8).collect();
    let mut free_max: VecDeque<u8> = (pinned..rf_size as u8).collect();
    let mut map: HashMap<u8, u8> = HashMap::new();
    for i in range.clone() {
        let Item::Inst(inst, _) = &mut items[i] else { continue };
        let (reads, writes) = vregs_of(inst, pinned);
        for v in &reads {
            if !map.contains_key(v) {
                return Err(RegAllocError::UseBeforeDef { vreg: *v });
            }
        }
        // Release registers of reads dying at this instruction *before*
        // allocating the destination: under the Min policy the destination
        // then reuses a just-dead source (maximal reuse); under Max the
        // freed register goes to the back of the rotation.
        let mut released: Vec<u8> = Vec::new();
        for v in &reads {
            if last_use.get(v) == Some(&i) && !writes.contains(v) && !released.contains(v) {
                released.push(*v);
                if let Some(p) = map.get(v).copied() {
                    free_min.insert(p);
                    free_max.push_back(p);
                }
            }
        }
        for v in &writes {
            if !map.contains_key(v) {
                let phys = match policy {
                    RegAllocPolicy::Min => {
                        let p = *free_min.iter().next().expect("pressure checked");
                        free_min.remove(&p);
                        p
                    }
                    RegAllocPolicy::Max => free_max.pop_front().expect("pressure checked"),
                };
                // Keep both structures consistent.
                match policy {
                    RegAllocPolicy::Min => {
                        free_max.retain(|&r| r != phys);
                    }
                    RegAllocPolicy::Max => {
                        free_min.remove(&phys);
                    }
                }
                map.insert(*v, phys);
            }
        }
        map_regs(inst, pinned, &map);
        // Release written registers whose last use is here (dead stores and
        // read+write operands not already released above).
        for v in &writes {
            if last_use.get(v) == Some(&i) && !released.contains(v) {
                released.push(*v);
                if let Some(p) = map.get(v).copied() {
                    free_min.insert(p);
                    free_max.push_back(p);
                }
            }
        }
    }
    Ok(map.len())
}

/// Maximum simultaneous live virtual registers in the region.
fn max_pressure(
    items: &[Item],
    range: std::ops::Range<usize>,
    pinned: u8,
) -> Result<usize, RegAllocError> {
    let mut last_use: HashMap<u8, usize> = HashMap::new();
    for i in range.clone() {
        if let Item::Inst(inst, _) = &items[i] {
            let (reads, writes) = vregs_of(inst, pinned);
            for v in reads.iter().chain(writes.iter()) {
                last_use.insert(*v, i);
            }
        }
    }
    let mut live = 0usize;
    let mut max = 0usize;
    let mut defined: HashMap<u8, bool> = HashMap::new();
    for i in range {
        if let Item::Inst(inst, _) = &items[i] {
            let (reads, writes) = vregs_of(inst, pinned);
            for v in &reads {
                if !defined.contains_key(v) {
                    return Err(RegAllocError::UseBeforeDef { vreg: *v });
                }
            }
            for v in &writes {
                if defined.insert(*v, true).is_none() {
                    live += 1;
                    max = max.max(live);
                }
            }
            for v in reads.iter().chain(writes.iter()) {
                if last_use.get(v) == Some(&i) && defined.remove(v).is_some() {
                    live -= 1;
                }
            }
        }
    }
    Ok(max)
}

/// Rewrites *read* occurrences of virtual data register `from` to `to`.
fn rename_reads(inst: &mut Instruction, from: u8, to: u8) {
    let f = |r: &mut DataReg| {
        if r.index() == from as usize {
            *r = DataReg::new(to);
        }
    };
    match inst {
        Instruction::Comp { op, dst, src1, src2, .. } => {
            f(src1);
            f(src2);
            if op.reads_dst() {
                f(dst);
            }
        }
        Instruction::StRf { drf, .. }
        | Instruction::WrPgsm { drf, .. }
        | Instruction::WrVsm { drf, .. } => f(drf),
        Instruction::Mov { to_arf: true, drf, .. } => f(drf),
        _ => {}
    }
}

/// Demotes the single-def virtual register with the longest live range to a
/// spill slot; returns false when nothing can be demoted.
///
/// Each use site reloads into a *fresh* virtual id, so the victim's long
/// live range is replaced by short def→store and reload→use segments.
fn demote_one(
    items: &mut Vec<Item>,
    range: std::ops::Range<usize>,
    pinned: u8,
    spill_base: u32,
    spill_slots: &mut u32,
) -> bool {
    let mut def: HashMap<u8, usize> = HashMap::new();
    let mut multi_def: Vec<u8> = Vec::new();
    let mut last: HashMap<u8, usize> = HashMap::new();
    let mut uses: HashMap<u8, Vec<usize>> = HashMap::new();
    let mut max_vreg = pinned;
    for i in range.clone() {
        if let Item::Inst(inst, _) = &items[i] {
            let (reads, writes) = vregs_of(inst, pinned);
            for v in writes {
                max_vreg = max_vreg.max(v);
                if def.insert(v, i).is_some() {
                    multi_def.push(v);
                }
            }
            for v in reads {
                max_vreg = max_vreg.max(v);
                uses.entry(v).or_default().push(i);
                last.insert(v, i);
            }
        }
    }
    // Longest single-def range with a use beyond def+1 (otherwise demotion
    // gains nothing). Multi-def vregs (MAC accumulators) stay in registers.
    let Some(victim) = def
        .iter()
        .filter(|(v, _)| !multi_def.contains(v))
        .filter_map(|(v, d)| {
            let l = *last.get(v)?;
            (l > d + 1).then_some((*v, l - d))
        })
        .max_by_key(|&(_, span)| span)
        .map(|(v, _)| v)
    else {
        return false;
    };
    let d = def[&victim];
    let use_sites: Vec<usize> = uses.get(&victim).cloned().unwrap_or_default();
    if use_sites.is_empty() {
        return false;
    }
    if max_vreg as usize + use_sites.len() >= 255 {
        return false; // virtual id space exhausted
    }
    let slot = *spill_slots;
    *spill_slots += 1;
    let addr = spill_base + slot * 16;
    // Mask for the spill traffic: copy the def instruction's mask.
    let mask = match &items[d] {
        Item::Inst(inst, _) => inst.simb_mask().expect("virtual defs are SIMB ops"),
        _ => unreachable!(),
    };

    // Rename each use to a fresh vreg and plan a reload before it. Process
    // insertions back-to-front so indices stay valid.
    let mut insertions: Vec<(usize, Item)> = Vec::new();
    for (fresh, &u) in (max_vreg + 1..).zip(use_sites.iter().rev()) {
        if let Item::Inst(inst, _) = &mut items[u] {
            rename_reads(inst, victim, fresh);
        }
        insertions.push((
            u,
            Item::Inst(
                Instruction::LdRf {
                    dram_addr: AddrOperand::Imm(addr),
                    drf: DataReg::new(fresh),
                    simb_mask: mask,
                },
                Some(MemTag::DramSpill(slot)),
            ),
        ));
    }
    insertions.push((
        d + 1,
        Item::Inst(
            Instruction::StRf {
                dram_addr: AddrOperand::Imm(addr),
                drf: DataReg::new(victim),
                simb_mask: mask,
            },
            Some(MemTag::DramSpill(slot)),
        ),
    ));
    insertions.sort_by_key(|(i, _)| std::cmp::Reverse(*i));
    for (i, item) in insertions {
        items.insert(i, item);
    }
    true
}

/// Returns the straight region containing or following `hint` after items
/// shifted.
fn current_region(items: &[Item], hint: usize) -> std::ops::Range<usize> {
    straight_regions(items).into_iter().find(|r| r.end >= hint).expect("region still exists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::KernelBuilder;
    use ipim_isa::{CompMode, CompOp, DataType, SimbMask, VecMask};

    const PINNED: u8 = 4;

    fn comp(dst: u8, a: u8, b: u8) -> Instruction {
        Instruction::Comp {
            op: CompOp::Add,
            dtype: DataType::F32,
            mode: CompMode::VectorVector,
            dst: DataReg::new(dst),
            src1: DataReg::new(a),
            src2: DataReg::new(b),
            vec_mask: VecMask::ALL,
            simb_mask: SimbMask::all(32),
        }
    }

    fn seti(dst: u8) -> Instruction {
        Instruction::SetiDrf {
            drf: DataReg::new(dst),
            imm: 0,
            vec_mask: VecMask::ALL,
            simb_mask: SimbMask::all(32),
        }
    }

    fn region(insts: Vec<Instruction>) -> Vec<Item> {
        let mut kb = KernelBuilder::new();
        kb.begin_straight();
        for i in insts {
            kb.push(i);
        }
        kb.end_straight();
        kb.finish()
    }

    fn insts(items: &[Item]) -> Vec<Instruction> {
        items
            .iter()
            .filter_map(|i| match i {
                Item::Inst(inst, _) => Some(*inst),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn min_policy_reuses_lowest_register() {
        // v4 = ..., v5 = ..., v6 = v4 + v5 ; v4,v5 die, v6 is the result.
        let mut items = region(vec![seti(4), seti(5), comp(6, 4, 5)]);
        allocate(&mut items, PINNED, 64, 0x1000, RegAllocPolicy::Min).unwrap();
        let out = insts(&items);
        // v4 -> p4, v5 -> p5, v6 -> p4 (reused immediately after v4 dies).
        match out[2] {
            Instruction::Comp { dst, .. } => assert_eq!(dst.index(), 4),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn max_policy_scatters_registers() {
        let mut items = region(vec![seti(4), seti(5), comp(6, 4, 5)]);
        allocate(&mut items, PINNED, 64, 0x1000, RegAllocPolicy::Max).unwrap();
        let out = insts(&items);
        match out[2] {
            Instruction::Comp { dst, .. } => {
                assert_eq!(dst.index(), 6, "round-robin should not reuse p4 yet")
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pinned_registers_untouched() {
        // Reads pinned p0 and p1.
        let mut items = region(vec![comp(4, 0, 1)]);
        allocate(&mut items, PINNED, 64, 0x1000, RegAllocPolicy::Max).unwrap();
        match insts(&items)[0] {
            Instruction::Comp { src1, src2, .. } => {
                assert_eq!(src1.index(), 0);
                assert_eq!(src2.index(), 1);
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn use_before_def_rejected() {
        let mut items = region(vec![comp(5, 4, 4)]);
        assert!(matches!(
            allocate(&mut items, PINNED, 64, 0x1000, RegAllocPolicy::Max),
            Err(RegAllocError::UseBeforeDef { vreg: 4 })
        ));
    }

    #[test]
    fn spills_when_pressure_exceeds_file() {
        // 8 temporaries alive at once in a 4+4 register file.
        let mut prog = Vec::new();
        for v in 4..12 {
            prog.push(seti(v));
        }
        // Use them all afterwards so they're simultaneously live.
        for v in 4..12 {
            prog.push(comp(12 + (v - 4), v, v));
        }
        let mut items = region(prog);
        let spills = allocate(&mut items, PINNED, 8, 0x1000, RegAllocPolicy::Max).unwrap();
        assert!(spills > 0, "must spill");
        let out = insts(&items);
        assert!(out.iter().any(|i| matches!(i, Instruction::StRf { .. })));
        assert!(out.iter().any(|i| matches!(i, Instruction::LdRf { .. })));
        // All register indices now fit the file.
        for inst in &out {
            for r in inst.reads().iter().chain(inst.writes().iter()) {
                if let RegRef::Data(d) = r {
                    assert!(d.index() < 8, "register {d:?} exceeds file");
                }
            }
        }
    }

    #[test]
    fn impossible_pressure_errors() {
        // Two registers needed at once with zero temporaries available.
        let mut items = region(vec![seti(4), comp(5, 4, 4), comp(6, 4, 5)]);
        assert!(matches!(
            allocate(&mut items, 64, 64, 0x1000, RegAllocPolicy::Max),
            Err(RegAllocError::TooFewRegisters { .. })
        ));
    }

    #[test]
    fn multiple_regions_allocated_independently() {
        let mut kb = KernelBuilder::new();
        kb.begin_straight();
        kb.push(seti(4));
        kb.push(comp(5, 4, 4));
        kb.end_straight();
        kb.push(Instruction::Sync { phase_id: 0 });
        kb.begin_straight();
        kb.push(seti(4));
        kb.push(comp(5, 4, 4));
        kb.end_straight();
        let mut items = kb.finish();
        allocate(&mut items, PINNED, 64, 0x1000, RegAllocPolicy::Min).unwrap();
        let out = insts(&items);
        // Both regions use the same low registers under Min.
        match (out[0], out[3]) {
            (Instruction::SetiDrf { drf: a, .. }, Instruction::SetiDrf { drf: b, .. }) => {
                assert_eq!(a, b);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
