//! Cheap static cost estimation for candidate schedules.
//!
//! The autotuner (`ipim-tune`) enumerates hundreds of candidate mappings;
//! cycle-accurate simulation of each is the expensive part. [`estimate`]
//! runs only the compiler's *memory planning* (no codegen, no simulation)
//! plus a small arithmetic walk over each root stage's expression, and
//! returns a cycle figure good enough to **rank** candidates: the tuner
//! prunes candidates whose estimate is several times the best seen, then
//! pays for simulation only on the survivors.
//!
//! The model is deliberately coarse but structurally faithful to the
//! codegen (see `codegen.rs`'s loop skeleton) and to the machine's
//! slot-level pipelining:
//!
//! ```text
//! per stage:  tile_setup × slots
//!           + staging                      (first slot's fill is exposed)
//!           + slots × max(compute, staging) (later fills overlap compute)
//! compute  =  rows × (row_setup + vec_groups × per_group_cost)
//! staging  =  staged window bytes / 2 per cycle   (0 without PGSM)
//! ```
//!
//! where `per_group_cost` counts ALU ops plus loads, loads being ~3×
//! dearer when they go to the bank instead of a staged PGSM window. All
//! arithmetic is integer and deterministic — the same schedule always
//! estimates the same cost on every machine.
//!
//! The constants were recalibrated (PR 6) against cycle counts replayed
//! from cached programs over a Blur 128² schedule sweep (`tune`
//! exhaustive + `run_workload` replays). Two findings drove the shape:
//! per-instruction cost is ~2× the old unit (control-core issue
//! bandwidth and RAW stalls), and single-slot schedules pay their full
//! PGSM staging latency serially — only with ≥2 slots per PE does the
//! next slot's fill overlap the current slot's compute. The old model
//! charged staging per slot uniformly and so ranked 1-slot 64×8 *above*
//! the measured winner 32×8 (est 3300 vs 3400; replayed cycles 10874 vs
//! 9084); the pipelined shape ranks the sweep with fewer inversions and
//! puts the measured winner first.

use ipim_arch::MachineConfig;
use ipim_frontend::{footprints, Expr, FuncBody, Pipeline};

use crate::layout::{BufferLayout, MemoryMap};
use crate::CompileError;

/// Cycles charged per ALU operation (per 4-wide vector group).
const ALU_COST: u64 = 2;
/// Cycles charged per load served from a staged PGSM window.
const PGSM_LOAD_COST: u64 = 2;
/// Cycles charged per load served straight from the bank (row activation
/// amortized over the unrolled burst).
const BANK_LOAD_COST: u64 = 6;
/// Fixed per-tile-slot overhead: mask/address-register prologue and the
/// drain between slots.
const TILE_SETUP_COST: u64 = 160;
/// Fixed per-row overhead: row base address updates.
const ROW_SETUP_COST: u64 = 40;
/// PGSM staging throughput: bytes moved per cycle per PE (bank reads
/// funneled through the per-PG memory controller).
const STAGE_BYTES_PER_CYCLE: u64 = 2;

/// The static cost picture of one compiled-shape pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostEstimate {
    /// Estimated cycles to quiescence (rank-only; not calibrated).
    pub est_cycles: u64,
    /// Estimated bytes staged into PGSM windows across the run.
    pub est_staged_bytes: u64,
    /// Per-root-stage breakdown `(stage name, est cycles)`.
    pub stages: Vec<(String, u64)>,
}

/// Estimates the cost of `pipeline` on `config` without code generation or
/// simulation.
///
/// # Errors
///
/// Returns [`CompileError`] for schedules the memory planner rejects
/// (indivisible extents, unvectorizable tiles, bank overflow) or whose
/// tile grid cannot be masked statically — the same early legality
/// boundary `compile` enforces, so an estimate failure predicts (a subset
/// of) compile failures.
pub fn estimate(pipeline: &Pipeline, config: &MachineConfig) -> Result<CostEstimate, CompileError> {
    let total_pes = config.total_pes() as u32;
    let map = MemoryMap::plan(pipeline, total_pes, config.bank.bank_bytes)?;
    let grid = map.grid;
    if !grid.tiles().is_multiple_of(total_pes) {
        return Err(CompileError::Unsupported {
            what: format!(
                "{} tiles do not divide evenly over {total_pes} PEs (static SIMB masks)",
                grid.tiles()
            ),
        });
    }
    let slots = grid.slots_per_pe() as u64;

    let mut est_cycles = 0u64;
    let mut est_staged_bytes = 0u64;
    let mut stages = Vec::new();
    for stage in pipeline.root_stages() {
        let cost = match stage.body.as_ref().expect("validated pipeline") {
            FuncBody::Pure(e) => {
                let (tw, th) = match map.layout(stage.source) {
                    BufferLayout::Distributed { tile, .. } => *tile,
                    BufferLayout::Replicated { extent, .. } => *extent,
                };
                let (loads, alu) = expr_costs(e);
                // Staged sources: every distributed input of this stage
                // when the schedule asks for PGSM staging.
                let mut staging = 0u64;
                if stage.schedule.load_pgsm {
                    for fp in footprints(e) {
                        if let BufferLayout::Distributed { stored_w, stored_h, .. } =
                            map.layout(fp.source)
                        {
                            if !fp.dynamic {
                                staging += u64::from(stored_w * stored_h * 4);
                            }
                        }
                    }
                }
                let load_cost =
                    if stage.schedule.load_pgsm { PGSM_LOAD_COST } else { BANK_LOAD_COST };
                let per_group = alu * ALU_COST + loads * load_cost;
                let groups_per_row = u64::from(tw.div_ceil(4));
                let rows = u64::from(th);
                est_staged_bytes += staging * slots;
                // Slot-level pipelining: the first slot's PGSM fill is
                // fully exposed; each later slot's fill overlaps the
                // previous slot's compute, so steady state runs at the
                // slower of the two.
                let compute = rows * (ROW_SETUP_COST + groups_per_row * per_group);
                let staging_cycles = staging / STAGE_BYTES_PER_CYCLE;
                TILE_SETUP_COST * slots + staging_cycles + slots * compute.max(staging_cycles)
            }
            FuncBody::Histogram { source, bins, .. } => {
                // Phase 1: per-pixel bin-index calculation and scratch
                // increment over the source tile; phase 2: cross-vault
                // merge of the partial histograms.
                let (tw, th) = match map.layout(*source) {
                    BufferLayout::Distributed { tile, .. } => *tile,
                    BufferLayout::Replicated { extent, .. } => *extent,
                };
                let pixels = u64::from(tw) * u64::from(th);
                let merge = u64::from(*bins) * config.total_vaults() as u64 * 4;
                slots * (TILE_SETUP_COST + pixels * 12) + merge
            }
        };
        est_cycles += cost;
        stages.push((stage.name.clone(), cost));
    }
    Ok(CostEstimate { est_cycles, est_staged_bytes, stages })
}

/// Counts `(loads, alu ops)` in an expression tree.
fn expr_costs(e: &Expr) -> (u64, u64) {
    match e {
        Expr::ConstF(_) | Expr::ConstI(_) | Expr::Var(_) => (0, 0),
        Expr::At(_, x, y) => {
            let (lx, ax) = expr_costs(x);
            let (ly, ay) = expr_costs(y);
            // Address arithmetic counts as ALU work too.
            (1 + lx + ly, 1 + ax + ay)
        }
        Expr::Bin(_, a, b) => {
            let (la, aa) = expr_costs(a);
            let (lb, ab) = expr_costs(b);
            (la + lb, 1 + aa + ab)
        }
        Expr::Cast(_, inner) => {
            let (l, a) = expr_costs(inner);
            (l, 1 + a)
        }
        Expr::Select(c, a, b) => {
            let (lc, ac) = expr_costs(c);
            let (la, aa) = expr_costs(a);
            let (lb, ab) = expr_costs(b);
            (lc + la + lb, 1 + ac + aa + ab)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipim_frontend::{x, y, PipelineBuilder};

    fn blur_like(tile: (u32, u32), pgsm: bool) -> Pipeline {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 64, 64);
        let f = p.func("f", 64, 64);
        p.define(f, (input.at(x() - 1, y()) + input.at(x(), y()) + input.at(x() + 1, y())) / 3.0);
        let mut s = p.schedule(f).compute_root().ipim_tile(tile.0, tile.1);
        if pgsm {
            s = s.load_pgsm();
        }
        let _ = s;
        p.build(f).unwrap()
    }

    #[test]
    fn estimate_is_deterministic_and_positive() {
        let cfg = MachineConfig::vault_slice(1);
        let a = estimate(&blur_like((8, 8), false), &cfg).unwrap();
        let b = estimate(&blur_like((8, 8), false), &cfg).unwrap();
        assert_eq!(a, b);
        assert!(a.est_cycles > 0);
        assert_eq!(a.stages.len(), 1);
    }

    #[test]
    fn pgsm_staging_trades_load_cost_for_staging_cost() {
        let cfg = MachineConfig::vault_slice(1);
        let cold = estimate(&blur_like((8, 8), false), &cfg).unwrap();
        let staged = estimate(&blur_like((8, 8), true), &cfg).unwrap();
        assert_eq!(cold.est_staged_bytes, 0);
        assert!(staged.est_staged_bytes > 0);
        // A 3-tap stencil re-reads its input: staging must look cheaper.
        assert!(staged.est_cycles < cold.est_cycles, "{staged:?} vs {cold:?}");
    }

    #[test]
    fn illegal_schedules_fail_like_the_planner() {
        let cfg = MachineConfig::vault_slice(1);
        // 64 is not divisible by 24.
        let p = blur_like((24, 8), false);
        assert!(matches!(estimate(&p, &cfg), Err(CompileError::Layout(_))));
    }

    #[test]
    fn fewer_slots_cost_less_setup() {
        let cfg = MachineConfig::vault_slice(1);
        // (8,8) → 64 tiles / 32 PEs = 2 slots; (16,16) → 16 tiles… not a
        // multiple of 32 PEs, so compare against (16,8) → 32 tiles, 1 slot.
        let small = estimate(&blur_like((8, 8), false), &cfg).unwrap();
        let big = estimate(&blur_like((16, 8), false), &cfg).unwrap();
        assert!(big.est_cycles < small.est_cycles, "{big:?} vs {small:?}");
    }
}
