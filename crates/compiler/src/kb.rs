//! Kernel-builder IR: a flat list of items with labels, straight-line
//! region markers and memory tags.
//!
//! Backend passes (register allocation, instruction reordering,
//! memory-order enforcement) operate on *straight-line regions* — the
//! inner-loop bodies — before labels are resolved, so instruction counts
//! may change freely. [`lower`] resolves labels into a final
//! [`ipim_isa::Program`].

use ipim_frontend::SourceId;
use ipim_isa::{CtrlReg, Instruction, Program, ProgramBuilder, ProgramError};

/// Which memory an instruction touches, for dependency construction.
///
/// Instructions with *different* tags never alias. Whether two instructions
/// with the *same* tag may alias depends on the variant: the compiler emits
/// provably-disjoint addresses within one straight region for
/// `DramBuffer`/`PgsmStage`, so those carry no self-conflict, while
/// read-modify-write and scratch traffic is ordered conservatively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemTag {
    /// A pipeline buffer in DRAM; in-region accesses are disjoint.
    DramBuffer(SourceId),
    /// Read-modify-write DRAM traffic (histogram partials): conservative.
    DramRmw(SourceId),
    /// One register-spill slot: conservative per slot.
    DramSpill(u32),
    /// PGSM traffic for a staged buffer: conservative.
    Pgsm(SourceId),
    /// PGSM staging writes (`ld pgsm`): disjoint by construction.
    PgsmStage(SourceId),
    /// Vault scratchpad traffic: conservative.
    Vsm,
}

impl MemTag {
    /// Whether two same-tagged instructions must stay ordered when at least
    /// one of them writes.
    pub fn self_conflicts(&self) -> bool {
        matches!(self, MemTag::DramRmw(_) | MemTag::DramSpill(_) | MemTag::Pgsm(_) | MemTag::Vsm)
    }
}

/// One item of the kernel IR.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// An instruction, with an optional memory tag.
    Inst(Instruction, Option<MemTag>),
    /// Binds a label to the next instruction.
    Bind(KLabel),
    /// Unconditional jump to a label.
    JumpTo(KLabel),
    /// Conditional jump (taken when the register is non-zero).
    CJumpTo(CtrlReg, KLabel),
    /// Start of a straight-line optimizable region.
    BeginStraight,
    /// End of a straight-line optimizable region.
    EndStraight,
}

/// A label in the kernel IR (resolved at lowering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KLabel(pub u32);

/// Builds the kernel IR.
#[derive(Debug, Default)]
pub struct KernelBuilder {
    items: Vec<Item>,
    next_label: u32,
    in_straight: bool,
}

impl KernelBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an untagged instruction.
    pub fn push(&mut self, inst: Instruction) {
        self.items.push(Item::Inst(inst, None));
    }

    /// Appends a memory instruction with its tag.
    pub fn push_mem(&mut self, inst: Instruction, tag: MemTag) {
        self.items.push(Item::Inst(inst, Some(tag)));
    }

    /// Allocates a fresh label.
    pub fn label(&mut self) -> KLabel {
        let l = KLabel(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` at the current position.
    pub fn bind(&mut self, label: KLabel) {
        assert!(!self.in_straight, "cannot bind a label inside a straight region");
        self.items.push(Item::Bind(label));
    }

    /// Appends a jump.
    pub fn jump_to(&mut self, label: KLabel) {
        assert!(!self.in_straight, "cannot jump inside a straight region");
        self.items.push(Item::JumpTo(label));
    }

    /// Appends a conditional jump.
    pub fn cjump_to(&mut self, cond: CtrlReg, label: KLabel) {
        assert!(!self.in_straight, "cannot jump inside a straight region");
        self.items.push(Item::CJumpTo(cond, label));
    }

    /// Opens a straight-line region.
    ///
    /// # Panics
    ///
    /// Panics on nested regions.
    pub fn begin_straight(&mut self) {
        assert!(!self.in_straight, "straight regions cannot nest");
        self.in_straight = true;
        self.items.push(Item::BeginStraight);
    }

    /// Closes the current straight-line region.
    ///
    /// # Panics
    ///
    /// Panics if no region is open.
    pub fn end_straight(&mut self) {
        assert!(self.in_straight, "no straight region open");
        self.in_straight = false;
        self.items.push(Item::EndStraight);
    }

    /// Labels allocated so far. A finished item list is label-self-contained
    /// over `0..labels_used()`, which is what lets a per-stage item list be
    /// spliced into a larger one by offsetting every label (see
    /// [`offset_labels`]).
    pub fn labels_used(&self) -> u32 {
        self.next_label
    }

    /// Finishes, returning the item list.
    ///
    /// # Panics
    ///
    /// Panics if a straight region is still open.
    pub fn finish(self) -> Vec<Item> {
        assert!(!self.in_straight, "unclosed straight region");
        self.items
    }
}

/// Rebases every label in `items` by `base`, so an independently built
/// (label-self-contained) item list can be appended to one that already
/// used labels `0..base` without collisions. Instructions carry no labels —
/// only `Bind`/`JumpTo`/`CJumpTo` items are rewritten.
pub fn offset_labels(items: &[Item], base: u32) -> Vec<Item> {
    items
        .iter()
        .map(|item| match item {
            Item::Bind(l) => Item::Bind(KLabel(l.0 + base)),
            Item::JumpTo(l) => Item::JumpTo(KLabel(l.0 + base)),
            Item::CJumpTo(c, l) => Item::CJumpTo(*c, KLabel(l.0 + base)),
            other => other.clone(),
        })
        .collect()
}

/// The straight-line regions of an item list, as index ranges (instructions
/// only — guaranteed by construction).
pub fn straight_regions(items: &[Item]) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let mut start = None;
    for (i, item) in items.iter().enumerate() {
        match item {
            Item::BeginStraight => start = Some(i + 1),
            Item::EndStraight => {
                let s = start.take().expect("balanced markers");
                out.push(s..i);
            }
            _ => {}
        }
    }
    out
}

/// Resolves labels and produces the final [`Program`].
///
/// # Errors
///
/// Returns [`ProgramError`] if a label is unbound or bound twice.
pub fn lower(items: &[Item]) -> Result<Program, ProgramError> {
    let mut b = ProgramBuilder::new();
    let mut labels = std::collections::HashMap::new();
    let mut label_of =
        |b: &mut ProgramBuilder, l: KLabel| *labels.entry(l).or_insert_with(|| b.new_label());
    for item in items {
        match item {
            Item::Inst(inst, _) => {
                b.push(*inst);
            }
            Item::Bind(l) => {
                let pl = label_of(&mut b, *l);
                b.bind(pl)?;
            }
            Item::JumpTo(l) => {
                let pl = label_of(&mut b, *l);
                b.push_jump_to(pl);
            }
            Item::CJumpTo(c, l) => {
                let pl = label_of(&mut b, *l);
                b.push_cjump_to(*c, pl);
            }
            Item::BeginStraight | Item::EndStraight => {}
        }
    }
    b.seal()
}

/// Counts instructions (static) in an item list.
pub fn static_len(items: &[Item]) -> usize {
    items
        .iter()
        .filter(|i| matches!(i, Item::Inst(..) | Item::JumpTo(_) | Item::CJumpTo(..)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipim_isa::{CrfOp, CrfSrc, Instruction};

    fn seti(reg: u8, v: i32) -> Instruction {
        Instruction::SetiCrf { dst: CtrlReg::new(reg), imm: v }
    }

    #[test]
    fn build_and_lower_loop() {
        let mut kb = KernelBuilder::new();
        let top = kb.label();
        kb.push(seti(0, 3));
        kb.bind(top);
        kb.push(Instruction::CalcCrf {
            op: CrfOp::Sub,
            dst: CtrlReg::new(0),
            src1: CtrlReg::new(0),
            src2: CrfSrc::Imm(1),
        });
        kb.cjump_to(CtrlReg::new(0), top);
        let items = kb.finish();
        assert_eq!(static_len(&items), 3);
        let p = lower(&items).unwrap();
        assert_eq!(p.len(), 3);
        match p.instructions()[2] {
            Instruction::CJump { target: CrfSrc::Imm(1), .. } => {}
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn straight_regions_found() {
        let mut kb = KernelBuilder::new();
        kb.push(seti(0, 1));
        kb.begin_straight();
        kb.push(seti(1, 2));
        kb.push(seti(2, 3));
        kb.end_straight();
        kb.push(seti(3, 4));
        let items = kb.finish();
        let regions = straight_regions(&items);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].len(), 2);
        for i in regions[0].clone() {
            assert!(matches!(items[i], Item::Inst(..)));
        }
    }

    #[test]
    #[should_panic(expected = "cannot nest")]
    fn nested_straight_panics() {
        let mut kb = KernelBuilder::new();
        kb.begin_straight();
        kb.begin_straight();
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn unclosed_straight_panics() {
        let mut kb = KernelBuilder::new();
        kb.begin_straight();
        let _ = kb.finish();
    }

    #[test]
    fn forward_labels_resolve() {
        let mut kb = KernelBuilder::new();
        let end = kb.label();
        kb.jump_to(end);
        kb.push(seti(0, 1));
        kb.bind(end);
        let p = lower(&kb.finish()).unwrap();
        match p.instructions()[0] {
            Instruction::Jump { target: CrfSrc::Imm(2) } => {}
            ref other => panic!("unexpected {other:?}"),
        }
    }
}
