//! Host-side data movement: uploading input images into the banks per the
//! planned layout, and reading results back.
//!
//! iPIM is a standalone accelerator with its own address space (paper
//! Sec. VI); the host DMAs inputs in before launch and reads outputs after.
//! Distributed buffers are uploaded *with their halo duplicated* (clamped at
//! image borders), which is the overlapping-tile DMA described in DESIGN.md.

use ipim_arch::Machine;
use ipim_frontend::{Image, SourceId};

use crate::layout::{BufferLayout, MemoryMap, TileGrid};

/// Location of a PE in the machine hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeLoc {
    /// Cube index.
    pub cube: usize,
    /// Vault index within the cube.
    pub vault: usize,
    /// Process group within the vault.
    pub pg: usize,
    /// PE within the process group.
    pub pe: usize,
}

/// Decomposes a linear PE id into its hierarchy coordinates.
pub fn pe_loc(machine: &Machine, linear: u32) -> PeLoc {
    let c = machine.config();
    let per_vault = c.pes_per_vault() as u32;
    let vault_global = linear / per_vault;
    let within = linear % per_vault;
    PeLoc {
        cube: (vault_global / c.vaults_per_cube as u32) as usize,
        vault: (vault_global % c.vaults_per_cube as u32) as usize,
        pg: (within / c.pes_per_pg as u32) as usize,
        pe: (within % c.pes_per_pg as u32) as usize,
    }
}

/// Uploads `image` into the banks as buffer `source` per the memory map.
///
/// # Panics
///
/// Panics if the image extent does not match the layout, or `source` has no
/// layout.
pub fn upload(machine: &mut Machine, map: &MemoryMap, source: SourceId, image: &Image) {
    match map.layout(source) {
        BufferLayout::Distributed { base, tile, halo, stored_w, stored_h, slot_bytes } => {
            upload_distributed(
                machine,
                &map.grid,
                image,
                *base,
                *tile,
                *halo,
                *stored_w,
                *stored_h,
                *slot_bytes,
            );
        }
        BufferLayout::Replicated { base, extent } => {
            assert_eq!(
                (image.width(), image.height()),
                *extent,
                "replicated image extent mismatch"
            );
            upload_replicated(machine, image, *base);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn upload_distributed(
    machine: &mut Machine,
    grid: &TileGrid,
    image: &Image,
    base: u32,
    tile: (u32, u32),
    halo: (u32, u32),
    stored_w: u32,
    stored_h: u32,
    slot_bytes: u32,
) {
    assert_eq!(image.width(), tile.0 * grid.tiles_x, "image width mismatch");
    assert_eq!(image.height(), tile.1 * grid.tiles_y, "image height mismatch");
    let mut row = vec![0u8; stored_w as usize * 4];
    for t in 0..grid.tiles() {
        let (owner, slot) = grid.owner(t);
        let loc = pe_loc(machine, owner);
        let tx = t % grid.tiles_x;
        let ty = t / grid.tiles_x;
        let ox = (tx * tile.0) as i64;
        let oy = (ty * tile.1) as i64;
        for sy in 0..stored_h {
            let gy = oy + sy as i64 - halo.1 as i64;
            for sx in 0..stored_w {
                let gx = ox + sx as i64 - halo.0 as i64;
                let v = image.get_clamped(gx, gy);
                row[sx as usize * 4..sx as usize * 4 + 4]
                    .copy_from_slice(&v.to_bits().to_le_bytes());
            }
            let addr = base + slot * slot_bytes + sy * stored_w * 4;
            machine.vault_mut(loc.cube, loc.vault).bank_array_mut(loc.pg, loc.pe).write(addr, &row);
        }
    }
}

fn upload_replicated(machine: &mut Machine, image: &Image, base: u32) {
    let c = machine.config().clone();
    let mut bytes = Vec::with_capacity(image.pixels() as usize * 16);
    for y in 0..image.height() {
        for x in 0..image.width() {
            let b = image.get(x, y).to_bits().to_le_bytes();
            for _ in 0..4 {
                bytes.extend_from_slice(&b);
            }
        }
    }
    for cube in 0..c.cubes {
        for vault in 0..c.vaults_per_cube {
            for pg in 0..c.pgs_per_vault {
                for pe in 0..c.pes_per_pg {
                    machine.vault_mut(cube, vault).bank_array_mut(pg, pe).write(base, &bytes);
                }
            }
        }
    }
}

/// The extent `read_back` would produce for buffer `source`, without a
/// machine: distributed buffers cover the full tile grid, replicated
/// buffers their planned extent. Used by the analytic engine tier, which
/// predicts a run without materializing banks to read from.
///
/// # Panics
///
/// Panics if `source` has no layout.
pub fn output_extent(map: &MemoryMap, source: SourceId) -> (u32, u32) {
    match map.layout(source) {
        BufferLayout::Distributed { tile, .. } => {
            (tile.0 * map.grid.tiles_x, tile.1 * map.grid.tiles_y)
        }
        BufferLayout::Replicated { extent, .. } => *extent,
    }
}

/// Reads buffer `source` back from the banks into an [`Image`].
///
/// Distributed buffers read each tile's core region from its owner;
/// replicated buffers read lane 0 of each 16-byte pixel from the machine's
/// first bank.
///
/// # Panics
///
/// Panics if `source` has no layout.
pub fn read_back(machine: &Machine, map: &MemoryMap, source: SourceId) -> Image {
    match map.layout(source) {
        BufferLayout::Distributed { base, tile, halo, stored_w, slot_bytes, .. } => {
            let grid = &map.grid;
            let mut img = Image::new(tile.0 * grid.tiles_x, tile.1 * grid.tiles_y);
            let mut row = vec![0u8; tile.0 as usize * 4];
            for t in 0..grid.tiles() {
                let (owner, slot) = grid.owner(t);
                let loc = pe_loc(machine, owner);
                let tx = t % grid.tiles_x;
                let ty = t / grid.tiles_x;
                for ly in 0..tile.1 {
                    let addr = base + slot * slot_bytes + (ly + halo.1) * stored_w * 4 + halo.0 * 4;
                    machine
                        .vault(loc.cube, loc.vault)
                        .bank_array(loc.pg, loc.pe)
                        .read(addr, &mut row);
                    for lx in 0..tile.0 {
                        let bits = u32::from_le_bytes(
                            row[lx as usize * 4..lx as usize * 4 + 4].try_into().expect("4"),
                        );
                        img.set(tx * tile.0 + lx, ty * tile.1 + ly, f32::from_bits(bits));
                    }
                }
            }
            img
        }
        BufferLayout::Replicated { base, extent } => {
            let mut img = Image::new(extent.0, extent.1);
            let arr = machine.vault(0, 0).bank_array(0, 0);
            for y in 0..extent.1 {
                for x in 0..extent.0 {
                    let addr = base + (y * extent.0 + x) * 16;
                    img.set(x, y, arr.read_f32(addr));
                }
            }
            img
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipim_arch::MachineConfig;
    use ipim_frontend::{x, y, PipelineBuilder};

    fn machine() -> Machine {
        Machine::new(MachineConfig::vault_slice(1))
    }

    #[test]
    fn pe_loc_decomposition() {
        let m = machine();
        assert_eq!(pe_loc(&m, 0), PeLoc { cube: 0, vault: 0, pg: 0, pe: 0 });
        assert_eq!(pe_loc(&m, 5), PeLoc { cube: 0, vault: 0, pg: 1, pe: 1 });
        assert_eq!(pe_loc(&m, 31), PeLoc { cube: 0, vault: 0, pg: 7, pe: 3 });
    }

    #[test]
    fn distributed_upload_read_round_trip() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 32, 32);
        let out = p.func("out", 32, 32);
        p.define(out, (input.at(x() - 1, y()) + input.at(x() + 1, y())) / 2.0);
        p.schedule(out).compute_root().ipim_tile(4, 4);
        let pipe = p.build(out).unwrap();
        let map = MemoryMap::plan(&pipe, 32, 1 << 20).unwrap();

        let img = Image::gradient(32, 32);
        let mut m = machine();
        upload(&mut m, &map, input.id(), &img);
        let back = read_back(&m, &map, input.id());
        assert_eq!(back.max_abs_diff(&img), 0.0);
    }

    #[test]
    fn halo_contains_clamped_neighbors() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 32, 32);
        let out = p.func("out", 32, 32);
        p.define(out, input.at(x() - 1, y()) + input.at(x() + 1, y()));
        p.schedule(out).compute_root().ipim_tile(4, 4);
        let pipe = p.build(out).unwrap();
        let map = MemoryMap::plan(&pipe, 32, 1 << 20).unwrap();
        let BufferLayout::Distributed { base, halo, stored_w, .. } = *map.layout(input.id()) else {
            panic!("expected distributed");
        };
        assert_eq!(halo.0, 1);

        let mut img = Image::new(32, 32);
        for yy in 0..32 {
            for xx in 0..32 {
                img.set(xx, yy, (yy * 32 + xx) as f32);
            }
        }
        let mut m = machine();
        upload(&mut m, &map, input.id(), &img);
        // Tile 1 is (tx=1, ty=0), owned by PE 1 (pg 0, pe 1), slot 0; its
        // left halo pixel at stored (0, 0) must equal image (3, 0).
        let arr = m.vault(0, 0).bank_array(0, 1);
        let v = arr.read_f32(base);
        assert_eq!(v, img.get(3, 0));
        // Its first core pixel at stored (1, 0) is image (4, 0).
        assert_eq!(arr.read_f32(base + 4), img.get(4, 0));
        let _ = stored_w;
    }

    #[test]
    fn replicated_upload_lands_in_every_bank() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 16, 16);
        let lut = p.input("lut", 8, 1);
        let out = p.func("out", 16, 16);
        p.define(out, lut.at(input.at(x(), y()).cast_i32(), 0));
        p.schedule(out).compute_root().ipim_tile(4, 4);
        let pipe = p.build(out).unwrap();
        let map = MemoryMap::plan(&pipe, 32, 1 << 20).unwrap();

        let lut_img = Image::from_vec(8, 1, (0..8).map(|i| i as f32 * 10.0).collect());
        let mut m = machine();
        upload(&mut m, &map, lut.id(), &lut_img);
        let BufferLayout::Replicated { base, .. } = *map.layout(lut.id()) else {
            panic!("expected replicated");
        };
        // Every lane of pixel 3 is 30.0, in multiple banks.
        for (pg, pe) in [(0, 0), (3, 2), (7, 3)] {
            let arr = m.vault(0, 0).bank_array(pg, pe);
            for lane in 0..4 {
                assert_eq!(arr.read_f32(base + 3 * 16 + lane * 4), 30.0);
            }
        }
        let back = read_back(&m, &map, lut.id());
        assert_eq!(back.max_abs_diff(&lut_img), 0.0);
    }
}
