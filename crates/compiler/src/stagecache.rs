//! Process-wide memoization of per-stage lowering.
//!
//! [`compile`](crate::compile) lowers each root stage into its own
//! label-self-contained [`Item`](crate::kb::Item) list and splices the
//! lists together (rebasing labels) before the global backend passes run.
//! That makes a stage's lowering a pure function of a small set of inputs
//! — the stage's content (body, extent, schedule), the layouts of every
//! buffer it touches, the tile grid, the machine facts, the register
//! policy and (for histograms) the scratch base and incoming sync phase —
//! so it can be cached across compilations.
//!
//! Sibling schedule candidates during autotuning, repeated serve jobs and
//! back-to-back CI measurements all hit this cache: a warm compilation
//! re-lowers nothing whose key is unchanged, and because the miss path
//! and the hit path produce the same item list, memoization is
//! bit-invisible in the final program.
//!
//! The cache is a bounded LRU behind a `Mutex` (lowering never runs under
//! the lock). Counters are process-global and surface through
//! [`stage_cache_stats`]; `ipim-core` exports them next to the
//! compiled-program cache under `serve/progcache/stage_*`.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use crate::kb::Item;

/// One stage's finished lowering: a label-self-contained item list, how
/// many labels it used, and the sync phase the stage advanced to (always
/// the incoming phase for pure stages; histograms bump it per barrier).
#[derive(Debug, Clone)]
pub(crate) struct LoweredStage {
    pub items: Vec<Item>,
    pub labels: u32,
    pub sync_phase_after: u32,
}

struct Entry {
    stage: LoweredStage,
    touched: u64,
}

struct Inner {
    capacity: usize,
    tick: u64,
    entries: HashMap<u64, Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Maximum cached stage lowerings. Stages are a few KiB of items each, so
/// this bounds the cache to single-digit MiB while covering a whole
/// autotuning space (hundreds of candidates × a handful of stages).
const CAPACITY: usize = 1024;

fn cache() -> &'static Mutex<Inner> {
    static CACHE: OnceLock<Mutex<Inner>> = OnceLock::new();
    CACHE.get_or_init(|| {
        Mutex::new(Inner {
            capacity: CAPACITY,
            tick: 0,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        })
    })
}

/// Looks a stage key up, refreshing recency and counting a hit or miss.
pub(crate) fn lookup(key: u64) -> Option<LoweredStage> {
    let mut c = cache().lock().expect("stage cache poisoned");
    c.tick += 1;
    let tick = c.tick;
    let found = c.entries.get_mut(&key).map(|e| {
        e.touched = tick;
        e.stage.clone()
    });
    match found {
        Some(stage) => {
            c.hits += 1;
            Some(stage)
        }
        None => {
            c.misses += 1;
            None
        }
    }
}

/// Stores a freshly lowered stage, evicting the least-recently-used entry
/// when full. Racing inserts for the same key keep the first entry (both
/// lowerings are identical by construction).
pub(crate) fn insert(key: u64, stage: LoweredStage) {
    let mut c = cache().lock().expect("stage cache poisoned");
    if c.entries.contains_key(&key) {
        return;
    }
    if c.entries.len() >= c.capacity {
        if let Some(&lru) = c.entries.iter().min_by_key(|(_, e)| e.touched).map(|(k, _)| k) {
            c.entries.remove(&lru);
            c.evictions += 1;
        }
    }
    c.tick += 1;
    let tick = c.tick;
    c.entries.insert(key, Entry { stage, touched: tick });
}

/// Process-wide `(hits, misses, evictions)` of the stage-lowering cache.
pub fn stage_cache_stats() -> (u64, u64, u64) {
    let c = cache().lock().expect("stage cache poisoned");
    (c.hits, c.misses, c.evictions)
}

/// 64-bit FNV-1a — the same stable, dependency-free hash the serving
/// layer's result cache uses, shared here so stage keys and the
/// compiled-program cache key in `ipim-core` agree on one function.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
