//! Property tests for the backend passes: reordering never violates the
//! dependency graph, and the lowered program's dependencies are preserved
//! by every compiler configuration (witnessed by identical functional
//! results, checked in `end_to_end_compile.rs`; here we check the graph
//! invariants directly on random blocks).

use ipim_compiler::kb::{Item, KernelBuilder, MemTag};
use ipim_compiler::reorder::{build_dep_graph, reorder, schedule_order};
use ipim_frontend::SourceId;
use ipim_isa::{AddrOperand, CompMode, CompOp, DataReg, DataType, Instruction, SimbMask, VecMask};
use ipim_simkit::check;
use ipim_simkit::prop::{bool_any, tuple2, tuple3, u32_in, u8_in, vec_of, Gen};

#[derive(Debug, Clone)]
enum GenOp {
    Comp { dst: u8, a: u8, b: u8 },
    Load { dst: u8, addr: u32, buf: u32 },
    Store { src: u8, addr: u32, buf: u32 },
}

/// Raw op encoding `(kind, reg-triple, slot, buf)` — generated at the
/// primitive level so failing blocks shrink structurally.
type RawOp = (u32, (u8, u8, u8), u32, u32);

fn arb_raw_block() -> Gen<Vec<RawOp>> {
    vec_of(
        ipim_simkit::prop::tuple4(
            u32_in(0, 3),
            tuple3(u8_in(4, 20), u8_in(4, 20), u8_in(4, 20)),
            u32_in(0, 8),
            u32_in(0, 2),
        ),
        2,
        25,
    )
}

fn ops_from_raw(raw: &[RawOp]) -> Vec<GenOp> {
    raw.iter()
        .map(|&(kind, (r0, r1, r2), slot, buf)| match kind {
            0 => GenOp::Comp { dst: r0, a: r1, b: r2 },
            1 => GenOp::Load { dst: r0, addr: slot * 16, buf },
            _ => GenOp::Store { src: r0, addr: slot * 16, buf },
        })
        .collect()
}

fn materialize(ops: &[GenOp]) -> Vec<(Instruction, Option<MemTag>)> {
    let mask = SimbMask::all(32);
    ops.iter()
        .map(|op| match op {
            GenOp::Comp { dst, a, b } => (
                Instruction::Comp {
                    op: CompOp::Add,
                    dtype: DataType::F32,
                    mode: CompMode::VectorVector,
                    dst: DataReg::new(*dst),
                    src1: DataReg::new(*a),
                    src2: DataReg::new(*b),
                    vec_mask: VecMask::ALL,
                    simb_mask: mask,
                },
                None,
            ),
            GenOp::Load { dst, addr, buf } => (
                Instruction::LdRf {
                    dram_addr: AddrOperand::Imm(*addr),
                    drf: DataReg::new(*dst),
                    simb_mask: mask,
                },
                Some(MemTag::DramRmw(SourceId(*buf))),
            ),
            GenOp::Store { src, addr, buf } => (
                Instruction::StRf {
                    dram_addr: AddrOperand::Imm(*addr),
                    drf: DataReg::new(*src),
                    simb_mask: mask,
                },
                Some(MemTag::DramRmw(SourceId(*buf))),
            ),
        })
        .collect()
}

#[test]
fn schedule_respects_every_dependency() {
    check(
        "schedule_respects_every_dependency",
        &tuple2(arb_raw_block(), bool_any()),
        |(raw, memorder)| {
            let block = materialize(&ops_from_raw(raw));
            let graph = build_dep_graph(&block, *memorder);
            let order = schedule_order(&block, &graph);
            // Permutation check.
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..block.len()).collect::<Vec<_>>());
            // Every edge (i -> j) keeps i before j.
            let pos: Vec<usize> = {
                let mut p = vec![0; order.len()];
                for (slot, &v) in order.iter().enumerate() {
                    p[v] = slot;
                }
                p
            };
            for (i, succs) in graph.succ.iter().enumerate() {
                for &(j, _) in succs {
                    assert!(pos[i] < pos[j], "edge {i}->{j} violated");
                }
            }
        },
    );
}

#[test]
fn memory_order_only_adds_edges() {
    check("memory_order_only_adds_edges", &arb_raw_block(), |raw| {
        let block = materialize(&ops_from_raw(raw));
        let without = build_dep_graph(&block, false);
        let with = build_dep_graph(&block, true);
        assert!(with.edges >= without.edges);
        for (i, succs) in without.succ.iter().enumerate() {
            for &(j, _) in succs {
                assert!(with.succ[i].iter().any(|&(t, _)| t == j), "edge {i}->{j} dropped");
            }
        }
    });
}

#[test]
fn reorder_preserves_region_multiset() {
    check("reorder_preserves_region_multiset", &arb_raw_block(), |raw| {
        let block = materialize(&ops_from_raw(raw));
        let mut kb = KernelBuilder::new();
        kb.begin_straight();
        for (inst, tag) in &block {
            match tag {
                Some(t) => kb.push_mem(*inst, *t),
                None => kb.push(*inst),
            }
        }
        kb.end_straight();
        let mut items = kb.finish();
        reorder(&mut items, true);
        let after: Vec<String> = items
            .iter()
            .filter_map(|i| match i {
                Item::Inst(inst, _) => Some(inst.to_string()),
                _ => None,
            })
            .collect();
        let mut before: Vec<String> = block.iter().map(|(i, _)| i.to_string()).collect();
        let mut after_sorted = after.clone();
        before.sort();
        after_sorted.sort();
        assert_eq!(before, after_sorted);
    });
}
