//! Property tests for the backend passes: reordering never violates the
//! dependency graph, and the lowered program's dependencies are preserved
//! by every compiler configuration (witnessed by identical functional
//! results, checked in `end_to_end_compile.rs`; here we check the graph
//! invariants directly on random blocks).

use ipim_compiler::kb::{Item, KernelBuilder, MemTag};
use ipim_compiler::reorder::{build_dep_graph, reorder, schedule_order};
use ipim_frontend::SourceId;
use ipim_isa::{
    AddrOperand, CompMode, CompOp, DataReg, DataType, Instruction, SimbMask, VecMask,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum GenOp {
    Comp { dst: u8, a: u8, b: u8 },
    Load { dst: u8, addr: u32, buf: u32 },
    Store { src: u8, addr: u32, buf: u32 },
}

fn arb_block() -> impl Strategy<Value = Vec<GenOp>> {
    proptest::collection::vec(
        prop_oneof![
            (4u8..20, 4u8..20, 4u8..20).prop_map(|(dst, a, b)| GenOp::Comp { dst, a, b }),
            (4u8..20, 0u32..8, 0u32..2)
                .prop_map(|(dst, slot, buf)| GenOp::Load { dst, addr: slot * 16, buf }),
            (4u8..20, 0u32..8, 0u32..2)
                .prop_map(|(src, slot, buf)| GenOp::Store { src, addr: slot * 16, buf }),
        ],
        2..25,
    )
}

fn materialize(ops: &[GenOp]) -> Vec<(Instruction, Option<MemTag>)> {
    let mask = SimbMask::all(32);
    ops.iter()
        .map(|op| match op {
            GenOp::Comp { dst, a, b } => (
                Instruction::Comp {
                    op: CompOp::Add,
                    dtype: DataType::F32,
                    mode: CompMode::VectorVector,
                    dst: DataReg::new(*dst),
                    src1: DataReg::new(*a),
                    src2: DataReg::new(*b),
                    vec_mask: VecMask::ALL,
                    simb_mask: mask,
                },
                None,
            ),
            GenOp::Load { dst, addr, buf } => (
                Instruction::LdRf {
                    dram_addr: AddrOperand::Imm(*addr),
                    drf: DataReg::new(*dst),
                    simb_mask: mask,
                },
                Some(MemTag::DramRmw(SourceId(*buf))),
            ),
            GenOp::Store { src, addr, buf } => (
                Instruction::StRf {
                    dram_addr: AddrOperand::Imm(*addr),
                    drf: DataReg::new(*src),
                    simb_mask: mask,
                },
                Some(MemTag::DramRmw(SourceId(*buf))),
            ),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn schedule_respects_every_dependency(ops in arb_block(), memorder in any::<bool>()) {
        let block = materialize(&ops);
        let graph = build_dep_graph(&block, memorder);
        let order = schedule_order(&block, &graph);
        // Permutation check.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..block.len()).collect::<Vec<_>>());
        // Every edge (i -> j) keeps i before j.
        let pos: Vec<usize> = {
            let mut p = vec![0; order.len()];
            for (slot, &v) in order.iter().enumerate() {
                p[v] = slot;
            }
            p
        };
        for (i, succs) in graph.succ.iter().enumerate() {
            for &(j, _) in succs {
                prop_assert!(pos[i] < pos[j], "edge {i}->{j} violated");
            }
        }
    }

    #[test]
    fn memory_order_only_adds_edges(ops in arb_block()) {
        let block = materialize(&ops);
        let without = build_dep_graph(&block, false);
        let with = build_dep_graph(&block, true);
        prop_assert!(with.edges >= without.edges);
        for (i, succs) in without.succ.iter().enumerate() {
            for &(j, _) in succs {
                prop_assert!(
                    with.succ[i].iter().any(|&(t, _)| t == j),
                    "edge {i}->{j} dropped"
                );
            }
        }
    }

    #[test]
    fn reorder_preserves_region_multiset(ops in arb_block()) {
        let block = materialize(&ops);
        let mut kb = KernelBuilder::new();
        kb.begin_straight();
        for (inst, tag) in &block {
            match tag {
                Some(t) => kb.push_mem(*inst, *t),
                None => kb.push(*inst),
            }
        }
        kb.end_straight();
        let mut items = kb.finish();
        reorder(&mut items, true);
        let after: Vec<String> = items
            .iter()
            .filter_map(|i| match i {
                Item::Inst(inst, _) => Some(inst.to_string()),
                _ => None,
            })
            .collect();
        let mut before: Vec<String> = block.iter().map(|(i, _)| i.to_string()).collect();
        let mut after_sorted = after.clone();
        before.sort();
        after_sorted.sort();
        prop_assert_eq!(before, after_sorted);
    }
}
