//! End-to-end compiler tests: every kernel class is compiled, executed on
//! the cycle-accurate machine, and compared pixel-exactly against the
//! frontend's reference interpreter.

use ipim_arch::{Machine, MachineConfig};
use ipim_compiler::{compile, host, CompileOptions};
use ipim_frontend::{interpret, x, y, Image, Pipeline, PipelineBuilder, SourceRef};

fn run_and_compare(
    pipeline: &Pipeline,
    inputs: &[(SourceRef, Image)],
    options: &CompileOptions,
    max_cycles: u64,
) -> (Image, ipim_arch::ExecutionReport) {
    let config = MachineConfig::vault_slice(1);
    let compiled = compile(pipeline, &config, options).expect("compile");
    let mut machine = Machine::new(config);
    for (src, img) in inputs {
        host::upload(&mut machine, &compiled.map, src.id(), img);
    }
    machine.load_program_all(&compiled.program);
    let report = machine.run(max_cycles).expect("quiesce");

    let images: Vec<Image> = inputs.iter().map(|(_, img)| img.clone()).collect();
    let expected = interpret(pipeline, &images).expect("reference");
    let actual = host::read_back(&machine, &compiled.map, pipeline.output().source);
    let diff = expected.max_abs_diff(&actual);
    assert!(
        diff <= 1e-4,
        "compiled output diverges from reference by {diff} (pipeline `{}`)",
        pipeline.output().name
    );
    (actual, report)
}

#[test]
fn brighten_elementwise() {
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 32, 32);
    let out = p.func("out", 32, 32);
    p.define(out, input.at(x(), y()) * 1.5);
    p.schedule(out).compute_root().ipim_tile(4, 4);
    let pipe = p.build(out).unwrap();
    let img = Image::gradient(32, 32);
    let (_, report) = run_and_compare(&pipe, &[(input, img)], &CompileOptions::opt(), 2_000_000);
    assert!(report.stats.issued > 0);
    assert!(report.stats.by_category.computation > 0);
    assert!(report.stats.by_category.index_calc > 0);
}

#[test]
fn blur_stencil_with_pgsm() {
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 32, 32);
    let out = p.func("out", 32, 32);
    p.define(out, (input.at(x() - 1, y()) + input.at(x(), y()) + input.at(x() + 1, y())) / 3.0);
    p.schedule(out).compute_root().ipim_tile(4, 4).load_pgsm();
    let pipe = p.build(out).unwrap();
    let img = Image::gradient(32, 32);
    let (_, report) = run_and_compare(&pipe, &[(input, img)], &CompileOptions::opt(), 4_000_000);
    assert!(report.stats.pgsm_accesses > 0, "stencil must stage through PGSM");
}

#[test]
fn blur_two_stage_separable() {
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 32, 32);
    let bx = p.func("blurx", 32, 32);
    p.define(bx, (input.at(x() - 1, y()) + input.at(x(), y()) + input.at(x() + 1, y())) / 3.0);
    p.schedule(bx).compute_root().ipim_tile(4, 4).load_pgsm();
    let out = p.func("out", 32, 32);
    p.define(out, (bx.at(x(), y() - 1) + bx.at(x(), y()) + bx.at(x(), y() + 1)) / 3.0);
    p.schedule(out).compute_root().ipim_tile(4, 4).load_pgsm();
    let pipe = p.build(out).unwrap();
    let img = Image::gradient(32, 32);
    run_and_compare(&pipe, &[(input, img)], &CompileOptions::opt(), 8_000_000);
}

#[test]
fn shift_offsets() {
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 32, 32);
    let out = p.func("out", 32, 32);
    p.define(out, input.at(x() - 4, y() - 4));
    p.schedule(out).compute_root().ipim_tile(4, 4);
    let pipe = p.build(out).unwrap();
    let mut img = Image::new(32, 32);
    for yy in 0..32 {
        for xx in 0..32 {
            img.set(xx, yy, (yy * 32 + xx) as f32);
        }
    }
    run_and_compare(&pipe, &[(input, img)], &CompileOptions::opt(), 4_000_000);
}

#[test]
fn downsample_resampling() {
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 64, 64);
    let out = p.func("out", 32, 32);
    p.define(
        out,
        (input.at(2 * x(), 2 * y())
            + input.at(2 * x() + 1, 2 * y())
            + input.at(2 * x(), 2 * y() + 1)
            + input.at(2 * x() + 1, 2 * y() + 1))
            / 4.0,
    );
    p.schedule(out).compute_root().ipim_tile(4, 4);
    let pipe = p.build(out).unwrap();
    let img = Image::gradient(64, 64);
    run_and_compare(&pipe, &[(input, img)], &CompileOptions::opt(), 4_000_000);
}

#[test]
fn upsample_resampling() {
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 16, 16);
    let out = p.func("out", 32, 32);
    p.define(out, input.at(x() / 2, y() / 2));
    p.schedule(out).compute_root().ipim_tile(4, 4);
    let pipe = p.build(out).unwrap();
    let img = Image::gradient(16, 16);
    run_and_compare(&pipe, &[(input, img)], &CompileOptions::opt(), 4_000_000);
}

#[test]
fn lut_gather_dynamic_index() {
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 32, 32);
    let lut = p.input("lut", 16, 1);
    let out = p.func("out", 32, 32);
    // Index = clamp-free scaled pixel value; compiler clamps in hardware.
    p.define(out, lut.at((input.at(x(), y()) * 15.9).cast_i32(), 0));
    p.schedule(out).compute_root().ipim_tile(4, 4);
    let pipe = p.build(out).unwrap();
    let img = Image::gradient(32, 32); // values in [0, 1)
    let lut_img = Image::from_vec(16, 1, (0..16).map(|i| 100.0 + i as f32).collect());
    run_and_compare(&pipe, &[(input, img), (lut, lut_img)], &CompileOptions::opt(), 8_000_000);
}

#[test]
fn select_blend() {
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 32, 32);
    let out = p.func("out", 32, 32);
    p.define(out, input.at(x(), y()).lt(0.5).select(1.0, -1.0));
    p.schedule(out).compute_root().ipim_tile(4, 4);
    let pipe = p.build(out).unwrap();
    let img = Image::gradient(32, 32);
    run_and_compare(&pipe, &[(input, img)], &CompileOptions::opt(), 4_000_000);
}

#[test]
fn coordinate_dependent_expression() {
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 32, 32);
    let out = p.func("out", 32, 32);
    // out = in * (x + 2y) — exercises Var lowering.
    p.define(out, input.at(x(), y()) * (x().cast_f32() + y().cast_f32() * 2.0));
    p.schedule(out).compute_root().ipim_tile(4, 4);
    let pipe = p.build(out).unwrap();
    let img = Image::splat(32, 32, 1.0);
    run_and_compare(&pipe, &[(input, img)], &CompileOptions::opt(), 4_000_000);
}

#[test]
fn inlined_non_root_stage() {
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 32, 32);
    let a = p.func("a", 32, 32);
    p.define(a, input.at(x(), y()) * 2.0); // not compute_root → inlined
    let out = p.func("out", 32, 32);
    p.define(out, a.at(x() - 1, y()) + a.at(x() + 1, y()));
    p.schedule(out).compute_root().ipim_tile(4, 4);
    let pipe = p.build(out).unwrap();
    let img = Image::gradient(32, 32);
    run_and_compare(&pipe, &[(input, img)], &CompileOptions::opt(), 4_000_000);
}

#[test]
fn histogram_reduction_single_vault() {
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 32, 32);
    let h = p.func("hist", 16, 1);
    p.define_histogram(h, input, 0.0, 1.0);
    p.schedule(h).compute_root().ipim_tile(4, 4);
    let pipe = p.build(h).unwrap();
    let img = Image::gradient(32, 32);
    let (out, report) = run_and_compare(&pipe, &[(input, img)], &CompileOptions::opt(), 8_000_000);
    // All 1024 pixels are counted.
    assert_eq!(out.data().iter().sum::<f32>(), 1024.0);
    assert!(report.stats.remote_reqs > 0, "all-gather must issue reqs");
    assert!(report.stats.by_category.synchronization > 0);
}

#[test]
fn all_compiler_baselines_are_correct() {
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 32, 32);
    let out = p.func("out", 32, 32);
    p.define(out, (input.at(x() - 1, y()) + input.at(x() + 1, y())) * 0.5 + input.at(x(), y()));
    p.schedule(out).compute_root().ipim_tile(4, 4).load_pgsm();
    let pipe = p.build(out).unwrap();
    let img = Image::gradient(32, 32);
    for options in [
        CompileOptions::opt(),
        CompileOptions::baseline1(),
        CompileOptions::baseline2(),
        CompileOptions::baseline3(),
        CompileOptions::baseline4(),
    ] {
        run_and_compare(&pipe, &[(input, img.clone())], &options, 8_000_000);
    }
}

#[test]
fn opt_is_faster_than_baseline1() {
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 32, 32);
    let out = p.func("out", 32, 32);
    p.define(
        out,
        (input.at(x() - 1, y())
            + input.at(x(), y())
            + input.at(x() + 1, y())
            + input.at(x(), y() - 1)
            + input.at(x(), y() + 1))
            / 5.0,
    );
    p.schedule(out).compute_root().ipim_tile(4, 4).load_pgsm();
    let pipe = p.build(out).unwrap();
    let img = Image::gradient(32, 32);
    let (_, opt) =
        run_and_compare(&pipe, &[(input, img.clone())], &CompileOptions::opt(), 8_000_000);
    let (_, base) =
        run_and_compare(&pipe, &[(input, img)], &CompileOptions::baseline1(), 16_000_000);
    assert!(
        opt.cycles < base.cycles,
        "opt ({}) should beat baseline1 ({})",
        opt.cycles,
        base.cycles
    );
}

#[test]
fn small_register_file_still_correct_via_spills() {
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 32, 32);
    let out = p.func("out", 32, 32);
    // Wide expression to create register pressure.
    let mut e = input.at(x(), y());
    for k in 1..=6 {
        e = e + input.at(x() - k, y()) * (k as f32) + input.at(x() + k, y()) * (0.5 / k as f32);
    }
    p.define(out, e / 13.0);
    p.schedule(out).compute_root().ipim_tile(4, 4).load_pgsm();
    let pipe = p.build(out).unwrap();

    let config = MachineConfig { data_rf_entries: 16, ..MachineConfig::vault_slice(1) };
    let compiled = compile(&pipe, &config, &CompileOptions::opt()).expect("compile");
    assert!(compiled.spill_slots > 0, "16-entry RF must force spills");
    let mut machine = Machine::new(config);
    let img = Image::gradient(32, 32);
    host::upload(&mut machine, &compiled.map, input.id(), &img);
    machine.load_program_all(&compiled.program);
    machine.run(16_000_000).expect("quiesce");
    let expected = interpret(&pipe, &[img]).expect("reference");
    let actual = host::read_back(&machine, &compiled.map, pipe.output().source);
    assert!(expected.max_abs_diff(&actual) <= 1e-4);
}

#[test]
fn row_window_staging_for_large_tiles() {
    // A 32×32 tile's stored window exceeds the 2 KiB PGSM share, forcing
    // the line-buffer fallback.
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 256, 256);
    let out = p.func("out", 256, 256);
    p.define(
        out,
        (input.at(x() - 1, y() - 1)
            + input.at(x() + 1, y() - 1)
            + input.at(x(), y())
            + input.at(x() - 1, y() + 1)
            + input.at(x() + 1, y() + 1))
            / 5.0,
    );
    p.schedule(out).compute_root().ipim_tile(32, 32).load_pgsm();
    let pipe = p.build(out).unwrap();
    let img = Image::gradient(256, 256);
    run_and_compare(&pipe, &[(input, img)], &CompileOptions::opt(), 64_000_000);
}

/// Maximum difference over the interior (inset from each border).
fn interior_diff(a: &Image, b: &Image, inset: u32) -> f32 {
    let mut d = 0.0f32;
    for yy in inset..a.height() - inset {
        for xx in inset..a.width() - inset {
            d = d.max((a.get(xx, yy) - b.get(xx, yy)).abs());
        }
    }
    d
}

#[test]
fn deep_stencil_chain_with_growing_halo() {
    // Six chained 3×3 stencils: halos accumulate backwards; the earliest
    // buffers must stage through row windows.
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 128, 128);
    let mut prev = input;
    for k in 0..6 {
        let f = p.func(&format!("s{k}"), 128, 128);
        p.define(
            f,
            (prev.at(x() - 1, y())
                + prev.at(x() + 1, y())
                + prev.at(x(), y() - 1)
                + prev.at(x(), y() + 1)
                + prev.at(x(), y()))
                / 5.0,
        );
        p.schedule(f).compute_root().ipim_tile(16, 16).load_pgsm();
        prev = f;
    }
    let pipe = p.build(prev).unwrap();
    let img = Image::gradient(128, 128);
    // Deep chains differ from the per-stage-clamping reference only inside
    // the border band (overlapped tiles extend the domain virtually; see
    // DESIGN.md on boundary semantics). Compare the interior.
    let config = MachineConfig::vault_slice(1);
    let compiled = compile(&pipe, &config, &CompileOptions::opt()).expect("compile");
    let mut machine = Machine::new(config);
    host::upload(&mut machine, &compiled.map, input.id(), &img);
    machine.load_program_all(&compiled.program);
    machine.run(128_000_000).expect("quiesce");
    let expected = interpret(&pipe, &[img]).expect("reference");
    let actual = host::read_back(&machine, &compiled.map, pipe.output().source);
    let diff = interior_diff(&expected, &actual, 6);
    assert!(diff <= 1e-4, "interior diverges by {diff}");
}
