//! Compiler diagnostics: the unsupported-feature fences fail cleanly with
//! actionable messages instead of miscompiling.

use ipim_arch::MachineConfig;
use ipim_compiler::{compile, CompileError, CompileOptions};
use ipim_frontend::{x, y, PipelineBuilder};

fn cfg() -> MachineConfig {
    MachineConfig::vault_slice(1)
}

#[test]
fn transposed_access_is_rejected() {
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 64, 64);
    let out = p.func("out", 64, 64);
    p.define(out, input.at(y(), x()));
    p.schedule(out).compute_root().ipim_tile(8, 8);
    let pipe = p.build(out).unwrap();
    // Transposed accesses classify as dynamic in bounds inference, so the
    // rejection surfaces either as a transposed-access error or as the
    // dynamic-source layout fence; both are clean failures.
    match compile(&pipe, &cfg(), &CompileOptions::opt()) {
        Err(CompileError::Unsupported { what }) => assert!(what.contains("transposed"), "{what}"),
        Err(CompileError::Layout(e)) => {
            assert!(e.to_string().contains("dynamically indexed"), "{e}")
        }
        other => panic!("expected transposed-access rejection, got {other:?}"),
    }
}

#[test]
fn pure_stage_writing_replicated_buffer_is_rejected() {
    // A (n,1) func gathered later would need on-device replication.
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 64, 64);
    let lut = p.func("lut", 64, 1);
    p.define(lut, x().cast_f32() / 64.0);
    p.schedule(lut).compute_root().ipim_tile(8, 8);
    let out = p.func("out", 64, 64);
    p.define(out, lut.at(input.at(x(), y()).cast_i32(), 0));
    p.schedule(out).compute_root().ipim_tile(8, 8);
    let pipe = p.build(out).unwrap();
    match compile(&pipe, &cfg(), &CompileOptions::opt()) {
        Err(CompileError::Unsupported { what }) => {
            assert!(what.contains("replicated"), "{what}")
        }
        other => panic!("expected replicated-output rejection, got {other:?}"),
    }
}

#[test]
fn incompatible_access_scale_is_rejected() {
    // Reads at 3x stride cannot map onto a 2:1 tile-size ratio.
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 128, 64);
    let out = p.func("out", 64, 64);
    p.define(out, input.at(3 * x(), y()));
    p.schedule(out).compute_root().ipim_tile(8, 8);
    let pipe = p.build(out).unwrap();
    match compile(&pipe, &cfg(), &CompileOptions::opt()) {
        Err(CompileError::Unsupported { what }) => {
            assert!(what.contains("scale"), "{what}")
        }
        other => panic!("expected scale rejection, got {other:?}"),
    }
}

#[test]
fn histogram_bins_must_be_vector_aligned() {
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 64, 64);
    let h = p.func("hist", 6, 1);
    p.define_histogram(h, input, 0.0, 1.0);
    p.schedule(h).compute_root().ipim_tile(8, 8);
    let pipe = p.build(h).unwrap();
    match compile(&pipe, &cfg(), &CompileOptions::opt()) {
        Err(CompileError::Unsupported { what }) => assert!(what.contains("bins"), "{what}"),
        other => panic!("expected bins rejection, got {other:?}"),
    }
}

#[test]
fn error_messages_render() {
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 60, 60);
    let out = p.func("out", 60, 60);
    p.define(out, input.at(x(), y()));
    p.schedule(out).compute_root().ipim_tile(8, 8);
    let pipe = p.build(out).unwrap();
    let err = compile(&pipe, &cfg(), &CompileOptions::opt()).unwrap_err();
    let text = err.to_string();
    assert!(text.contains("layout"), "{text}");
    assert!(!text.is_empty());
}

#[test]
fn compiled_program_shape_is_sane() {
    use ipim_isa::Instruction;
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 64, 64);
    let out = p.func("out", 64, 64);
    p.define(out, input.at(x(), y()) * 2.0);
    p.schedule(out).compute_root().ipim_tile(8, 8);
    let pipe = p.build(out).unwrap();
    let compiled = compile(&pipe, &cfg(), &CompileOptions::opt()).unwrap();
    let insts = compiled.program.instructions();
    let count = |f: fn(&Instruction) -> bool| insts.iter().filter(|i| f(i)).count();
    assert!(count(|i| matches!(i, Instruction::LdRf { .. })) >= 1);
    assert!(count(|i| matches!(i, Instruction::StRf { .. })) >= 1);
    assert!(count(|i| matches!(i, Instruction::Comp { .. })) >= 1);
    assert!(count(|i| matches!(i, Instruction::CJump { .. })) >= 3, "three loop levels");
    assert!(count(|i| matches!(i, Instruction::CalcArf { .. })) >= 5, "index calculation");
    assert_eq!(compiled.spill_slots, 0);
    // The assembly listing is printable end to end.
    assert!(compiled.program.to_assembly().lines().count() == compiled.static_instructions);
}
