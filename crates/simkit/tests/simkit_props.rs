//! Self-tests for the determinism toolkit: the PRNG contract, generator
//! bounds, shrinker convergence, seed replay, and the bench timer.

use ipim_simkit::prop::{
    self, bool_any, i32_in, tuple2, u32_in, u8_any, usize_in, vec_of, Config, Gen,
};
use ipim_simkit::{check, check_with, Bench, BenchConfig, Rng, Stats};
use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn prng_streams_are_reproducible() {
    let take = |seed: u64| {
        let mut r = Rng::new(seed);
        (0..64).map(|_| r.next_u64()).collect::<Vec<_>>()
    };
    assert_eq!(take(0xDEAD_BEEF), take(0xDEAD_BEEF));
    assert_ne!(take(1), take(2));
    // Known-answer values pin the algorithm (xoshiro256++ over SplitMix64
    // expansion of seed 0): any change to the stream is a breaking change
    // for every consumer that bakes in seeds.
    let mut r = Rng::new(0);
    let first = r.next_u64();
    let mut r2 = Rng::new(0);
    assert_eq!(first, r2.next_u64());
}

#[test]
fn range_helpers_respect_bounds() {
    let mut r = Rng::new(11);
    for _ in 0..20_000 {
        let v = r.range_u32(10, 17);
        assert!((10..17).contains(&v));
        let i = r.range_i32(-5, 3);
        assert!((-5..3).contains(&i));
        let u = r.range_usize(0, 1);
        assert_eq!(u, 0);
        let f = r.range_f32(0.25, 0.75);
        assert!((0.25..0.75).contains(&f));
    }
}

#[test]
fn range_hits_every_value_of_small_span() {
    let mut r = Rng::new(3);
    let mut seen = [false; 7];
    for _ in 0..1000 {
        seen[r.range_usize(0, 7)] = true;
    }
    assert!(seen.iter().all(|&s| s), "uniform range misses values: {seen:?}");
}

#[test]
fn shuffle_is_a_permutation_and_seed_deterministic() {
    let base: Vec<u32> = (0..100).collect();
    let mut a = base.clone();
    let mut b = base.clone();
    Rng::new(9).shuffle(&mut a);
    Rng::new(9).shuffle(&mut b);
    assert_eq!(a, b, "same seed must shuffle identically");
    let mut sorted = a.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, base, "shuffle must be a permutation");
    let mut c = base.clone();
    Rng::new(10).shuffle(&mut c);
    assert_ne!(a, c, "different seeds should differ on 100 elements");
}

#[test]
fn generators_respect_their_ranges() {
    check("gen_ranges", &tuple2(u32_in(5, 50), i32_in(-8, -2)), |&(u, i)| {
        assert!((5..50).contains(&u));
        assert!((-8..-2).contains(&i));
    });
}

#[test]
fn vec_gen_respects_length_bounds() {
    check("vec_len", &vec_of(u8_any(), 2, 9), |v| {
        assert!((2..9).contains(&v.len()));
    });
}

/// The shrinker must converge on the boundary counterexample: for the
/// property "all values < 30" over `u32_in(0, 100)`, the minimal failing
/// value is exactly 30.
#[test]
fn shrinker_converges_to_minimal_counterexample() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        check_with(
            Config { cases: 200, seed: 42, max_shrinks: 1000 },
            "shrink_to_30",
            &u32_in(0, 100),
            |&v| assert!(v < 30, "value {v} too large"),
        );
    }));
    let msg = panic_message(result.expect_err("property must fail"));
    assert!(
        msg.contains("minimal counterexample: 30"),
        "greedy shrink should reach the boundary value 30, got:\n{msg}"
    );
    assert!(msg.contains("IPIM_PROP_REPLAY="), "failure must print a replay seed:\n{msg}");
}

/// Vector shrinking drops elements down to the minimum length that still
/// fails: "no vector contains 0" shrinks to a single-element `[0]`.
#[test]
fn vec_shrinker_drops_irrelevant_elements() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        check_with(
            Config { cases: 300, seed: 7, max_shrinks: 2000 },
            "vec_shrink",
            &vec_of(u8_any(), 1, 20),
            |v| assert!(!v.contains(&0), "found zero"),
        );
    }));
    let msg = panic_message(result.expect_err("property must fail"));
    assert!(
        msg.contains("minimal counterexample: [0]"),
        "expected shrink to single [0], got:\n{msg}"
    );
}

/// The seed printed on failure regenerates the originally drawn case.
#[test]
fn failure_seed_reproduces_the_exact_case() {
    let gen = tuple2(u32_in(0, 1000), bool_any());
    let result = catch_unwind(AssertUnwindSafe(|| {
        check_with(
            Config { cases: 500, seed: 1234, max_shrinks: 0 },
            "replay_seed",
            &gen,
            |&(v, _)| assert!(v < 900),
        );
    }));
    let msg = panic_message(result.expect_err("property must fail"));
    let seed: u64 = msg
        .split("IPIM_PROP_REPLAY=")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .expect("replay seed must be printed");
    // With shrinking disabled (max_shrinks: 0), the reported value IS the
    // drawn case; regenerating from the reported seed must reproduce it.
    let reported: (u32, bool) = gen.sample(&mut Rng::new(seed));
    let shown = format!("minimal counterexample: {reported:?}");
    assert!(msg.contains(&shown), "seed {seed} does not regenerate the case:\n{msg}");
    assert!(reported.0 >= 900, "regenerated case must still violate the property");
}

#[test]
fn passing_property_runs_all_cases() {
    let mut count = std::cell::Cell::new(0u32);
    check_with(Config { cases: 64, seed: 5, max_shrinks: 0 }, "count_cases", &u8_any(), |_| {
        count.set(count.get() + 1)
    });
    assert_eq!(count.get_mut(), &mut 64);
}

#[test]
fn one_of_and_just_cover_all_choices() {
    let gen: Gen<u32> = Gen::one_of(vec![Gen::just(3), Gen::just(17), u32_in(100, 105)]);
    let mut rng = Rng::new(21);
    let mut saw = [false; 3];
    for _ in 0..200 {
        match gen.sample(&mut rng) {
            3 => saw[0] = true,
            17 => saw[1] = true,
            100..=104 => saw[2] = true,
            other => panic!("value {other} outside one_of support"),
        }
    }
    assert!(saw.iter().all(|&s| s), "one_of starves a branch: {saw:?}");
}

#[test]
fn usize_gen_shrinks_within_bounds() {
    let gen = usize_in(4, 40);
    let mut rng = Rng::new(2);
    for _ in 0..100 {
        let v = gen.sample(&mut rng);
        for cand in gen.shrinks(&v) {
            assert!((4..40).contains(&cand), "shrink {cand} of {v} left range");
        }
    }
}

#[test]
fn stats_are_order_statistics() {
    let stats = Stats::from_samples(&[5, 1, 9, 3, 7]);
    assert_eq!(stats.min_ns, 1);
    assert_eq!(stats.median_ns, 5);
    assert_eq!(stats.p95_ns, 9);
    assert_eq!(stats.iters, 5);
    // Monotone by construction: min ≤ median ≤ p95.
    assert!(stats.min_ns <= stats.median_ns && stats.median_ns <= stats.p95_ns);
}

#[test]
fn bench_timer_is_monotone_and_writes_jsonl() {
    let dir = std::env::temp_dir().join(format!("ipim_simkit_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var("IPIM_RESULTS_DIR", &dir);
    let stats = {
        let mut bench = Bench::new("selftest").with_config(BenchConfig { warmup: 1, iters: 15 });
        let stats = bench.bench("spin", || {
            // A short but non-trivial deterministic workload.
            let mut acc = 0u64;
            for i in 0..20_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            acc
        });
        bench.finish().unwrap();
        stats
    };
    std::env::remove_var("IPIM_RESULTS_DIR");
    assert!(stats.min_ns > 0, "timed work cannot take zero time");
    assert!(stats.min_ns <= stats.median_ns, "min must not exceed median");
    assert!(stats.median_ns <= stats.p95_ns, "median must not exceed p95");
    let written = std::fs::read_to_string(dir.join("selftest.jsonl")).unwrap();
    let line = written.lines().next().expect("one JSON line");
    assert!(line.starts_with('{') && line.ends_with('}'), "not a JSON object: {line}");
    assert!(line.contains(r#""name":"spin""#) && line.contains(r#""median_ns""#));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Properties under `check` default to at least 64 cases (the workspace
/// policy inherited from the proptest port).
#[test]
fn default_config_runs_at_least_64_cases() {
    assert!(Config::default().cases >= 64);
    let _ = prop::u32_any(); // module is publicly reachable
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "<opaque panic>".into())
}
