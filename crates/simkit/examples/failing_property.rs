//! Demo: a deliberately failing property, to show shrinking + seed replay.

use ipim_simkit::check;
use ipim_simkit::prop::u32_in;

fn main() {
    let result = std::panic::catch_unwind(|| {
        check("demo_failing_property", &u32_in(0, 1000), |v| {
            assert!(*v < 37, "value {v} is not < 37");
        });
    });
    if result.is_err() {
        println!("(property failed as expected — see message above)");
    }
}
