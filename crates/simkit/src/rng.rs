//! Seedable, portable PRNG: xoshiro256++ with SplitMix64 state expansion.
//!
//! xoshiro256++ (Blackman & Vigna, 2019) is the reference general-purpose
//! generator for non-cryptographic simulation work: 256 bits of state, a
//! 2^256 − 1 period, and excellent equidistribution. The 64-bit seed is
//! expanded into the four state words with SplitMix64, the recommended
//! seeding procedure, so nearby seeds still produce uncorrelated streams.

/// A deterministic pseudo-random number generator.
///
/// Two generators constructed with the same seed produce identical
/// streams on every platform; this is the determinism contract the
/// workload generators and the property harness build on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

/// One step of SplitMix64 — also used on its own to derive per-case seeds
/// in the property harness.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng { s }
    }

    /// Next 64 uniformly distributed bits (xoshiro256++ output function).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly distributed bits (upper half of the 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f32` in `[0, 1)`, using the top 24 bits of a draw.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)`, using the top 53 bits of a draw.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `bool`.
    #[inline]
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `u64` in `[0, bound)` via Lemire-style rejection (unbiased).
    ///
    /// Panics if `bound` is zero.
    pub fn range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "range_u64 bound must be positive");
        // Rejection zone keeps the draw unbiased for bounds that do not
        // divide 2^64.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform `u32` in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "range_u32: empty range {lo}..{hi}");
        lo + self.range_u64((hi - lo) as u64) as u32
    }

    /// Uniform `i32` in `[lo, hi)`. Panics if the range is empty.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        assert!(lo < hi, "range_i32: empty range {lo}..{hi}");
        let span = (hi as i64 - lo as i64) as u64;
        (lo as i64 + self.range_u64(span) as i64) as i32
    }

    /// Uniform `usize` in `[lo, hi)`. Panics if the range is empty.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "range_usize: empty range {lo}..{hi}");
        lo + self.range_u64((hi - lo) as u64) as usize
    }

    /// Uniform `f32` in `[lo, hi)`. Panics if the range is empty or either
    /// bound is non-finite.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "range_f32: bad range {lo}..{hi}");
        let v = lo + self.next_f32() * (hi - lo);
        // Rounding in the multiply can land exactly on `hi`; clamp back
        // into the half-open interval.
        if v >= hi {
            lo
        } else {
            v
        }
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range_u64((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose on empty slice");
        &slice[self.range_usize(0, slice.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let f = r.next_f32();
            assert!((0.0..1.0).contains(&f));
            let d = r.next_f64();
            assert!((0.0..1.0).contains(&d));
        }
    }
}
