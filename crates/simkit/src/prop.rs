//! A minimal property-testing harness: generator combinators, greedy
//! shrinking, and failure-seed replay.
//!
//! Replaces `proptest` for the workspace's property tests (DESIGN.md §5a).
//! A property is an ordinary closure over a generated value that panics
//! (via `assert!`/`assert_eq!`) when the property is violated. The runner
//! draws `Config::cases` values from independently-seeded PRNG streams;
//! on failure it greedily shrinks the counterexample and panics with the
//! case seed, which can be replayed exactly:
//!
//! ```text
//! IPIM_PROP_REPLAY=<seed> cargo test -p <crate> <test_name>
//! ```
//!
//! Environment knobs: `IPIM_PROP_CASES` overrides the case count,
//! `IPIM_PROP_SEED` overrides the base seed (both decimal u64),
//! `IPIM_PROP_REPLAY` re-runs a single reported case seed.

use crate::rng::{splitmix64, Rng};
use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};
use std::rc::Rc;

/// Harness configuration: how many cases to draw and from which seed.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases per property (default 64).
    pub cases: u32,
    /// Base seed of the run; case `i` uses a SplitMix64-derived stream.
    pub seed: u64,
    /// Cap on greedy shrink iterations (default 1000).
    pub max_shrinks: u32,
}

impl Default for Config {
    fn default() -> Self {
        let cases =
            std::env::var("IPIM_PROP_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
        let seed = std::env::var("IPIM_PROP_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x1B1A_57ED_5EED_0001);
        Config { cases, seed, max_shrinks: 1000 }
    }
}

type GenFn<T> = dyn Fn(&mut Rng) -> T;
type ShrinkFn<T> = dyn Fn(&T) -> Vec<T>;

/// A value generator: draws values from a PRNG and proposes smaller
/// variants of a failing value (greedy shrinking).
///
/// `Gen` is cheaply clonable (internally reference-counted), so derived
/// generators can be built up combinator-style.
pub struct Gen<T> {
    gen: Rc<GenFn<T>>,
    shrink: Rc<ShrinkFn<T>>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen { gen: Rc::clone(&self.gen), shrink: Rc::clone(&self.shrink) }
    }
}

impl<T: 'static> Gen<T> {
    /// A generator from a raw sampling function, with no shrinking.
    pub fn from_fn(f: impl Fn(&mut Rng) -> T + 'static) -> Self {
        Gen { gen: Rc::new(f), shrink: Rc::new(|_| Vec::new()) }
    }

    /// Attaches a shrink function proposing candidate smaller values.
    ///
    /// Candidates must themselves be values the generator could produce,
    /// otherwise a "shrunk" counterexample may not correspond to any seed.
    pub fn with_shrink(self, f: impl Fn(&T) -> Vec<T> + 'static) -> Self {
        Gen { gen: self.gen, shrink: Rc::new(f) }
    }

    /// Draws one value.
    pub fn sample(&self, rng: &mut Rng) -> T {
        (self.gen)(rng)
    }

    /// Proposes shrink candidates for a failing value.
    pub fn shrinks(&self, value: &T) -> Vec<T> {
        (self.shrink)(value)
    }

    /// Maps generated values through `f`. The mapped generator does not
    /// shrink (there is no inverse); prefer generating the primitive
    /// representation and mapping inside the property when shrinking
    /// matters.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let g = self.gen;
        Gen::from_fn(move |rng| f(g(rng)))
    }

    /// Always produces `value`.
    pub fn just(value: T) -> Self
    where
        T: Clone,
    {
        Gen::from_fn(move |_| value.clone())
    }

    /// Picks one of the given generators uniformly per draw.
    ///
    /// Does not shrink across variants: a candidate from the wrong
    /// variant's shrinker could leave the generator's support.
    pub fn one_of(choices: Vec<Gen<T>>) -> Self {
        assert!(!choices.is_empty(), "one_of needs at least one generator");
        Gen::from_fn(move |rng| {
            let i = rng.range_usize(0, choices.len());
            choices[i].sample(rng)
        })
    }
}

/// Integer shrink candidates: toward `lo`, by jump-to-lo then halving.
fn shrink_integer_toward(lo: i64, v: i64) -> Vec<i64> {
    if v == lo {
        return Vec::new();
    }
    let mut out = vec![lo];
    let half = lo + (v - lo) / 2;
    if half != lo && half != v {
        out.push(half);
    }
    let dec = v - 1;
    if dec != lo && dec != half {
        out.push(dec);
    }
    out
}

/// Uniform `u8` in `[lo, hi)`, shrinking toward `lo`.
pub fn u8_in(lo: u8, hi: u8) -> Gen<u8> {
    Gen::from_fn(move |rng| rng.range_u32(lo as u32, hi as u32) as u8).with_shrink(move |&v| {
        shrink_integer_toward(lo as i64, v as i64).into_iter().map(|x| x as u8).collect()
    })
}

/// Any `u8`, shrinking toward zero.
pub fn u8_any() -> Gen<u8> {
    Gen::from_fn(|rng| rng.next_u32() as u8)
        .with_shrink(|&v| shrink_integer_toward(0, v as i64).into_iter().map(|x| x as u8).collect())
}

/// Uniform `u32` in `[lo, hi)`, shrinking toward `lo`.
pub fn u32_in(lo: u32, hi: u32) -> Gen<u32> {
    Gen::from_fn(move |rng| rng.range_u32(lo, hi)).with_shrink(move |&v| {
        shrink_integer_toward(lo as i64, v as i64).into_iter().map(|x| x as u32).collect()
    })
}

/// Any `u32`, shrinking toward zero.
pub fn u32_any() -> Gen<u32> {
    Gen::from_fn(|rng| rng.next_u32()).with_shrink(|&v| {
        shrink_integer_toward(0, v as i64).into_iter().map(|x| x as u32).collect()
    })
}

/// Any `u64`, shrinking toward zero (halving only, to stay in range).
pub fn u64_any() -> Gen<u64> {
    Gen::from_fn(|rng| rng.next_u64()).with_shrink(|&v| {
        let mut out = Vec::new();
        if v != 0 {
            out.push(0);
            if v / 2 != 0 {
                out.push(v / 2);
            }
            if v - 1 != v / 2 && v - 1 != 0 {
                out.push(v - 1);
            }
        }
        out
    })
}

/// Uniform `i32` in `[lo, hi)`, shrinking toward the in-range point
/// closest to zero.
pub fn i32_in(lo: i32, hi: i32) -> Gen<i32> {
    let target = if lo > 0 {
        lo
    } else if hi <= 0 {
        hi - 1
    } else {
        0
    };
    Gen::from_fn(move |rng| rng.range_i32(lo, hi)).with_shrink(move |&v| {
        shrink_integer_toward(target as i64, v as i64).into_iter().map(|x| x as i32).collect()
    })
}

/// Any `i32`, shrinking toward zero.
pub fn i32_any() -> Gen<i32> {
    Gen::from_fn(|rng| rng.next_u32() as i32).with_shrink(|&v| {
        shrink_integer_toward(0, v as i64).into_iter().map(|x| x as i32).collect()
    })
}

/// Uniform `usize` in `[lo, hi)`, shrinking toward `lo`.
pub fn usize_in(lo: usize, hi: usize) -> Gen<usize> {
    Gen::from_fn(move |rng| rng.range_usize(lo, hi)).with_shrink(move |&v| {
        shrink_integer_toward(lo as i64, v as i64).into_iter().map(|x| x as usize).collect()
    })
}

/// Uniform `bool`, shrinking `true` to `false`.
pub fn bool_any() -> Gen<bool> {
    Gen::from_fn(|rng| rng.next_bool()).with_shrink(|&v| if v { vec![false] } else { Vec::new() })
}

/// Uniform `f32` in `[lo, hi)`, shrinking toward `lo`.
pub fn f32_in(lo: f32, hi: f32) -> Gen<f32> {
    Gen::from_fn(move |rng| rng.range_f32(lo, hi)).with_shrink(move |&v| {
        let mut out = Vec::new();
        if v != lo {
            out.push(lo);
            let mid = lo + (v - lo) * 0.5;
            if mid != lo && mid != v {
                out.push(mid);
            }
        }
        out
    })
}

/// Vectors of `elem` with length in `[min_len, max_len)`.
///
/// Shrinks by dropping the front/back half, dropping single elements
/// (respecting `min_len`), and shrinking individual elements.
pub fn vec_of<T: Clone + 'static>(elem: Gen<T>, min_len: usize, max_len: usize) -> Gen<Vec<T>> {
    assert!(min_len < max_len, "vec_of: empty length range");
    let sampler = elem.clone();
    Gen::from_fn(move |rng| {
        let n = rng.range_usize(min_len, max_len);
        (0..n).map(|_| sampler.sample(rng)).collect()
    })
    .with_shrink(move |v: &Vec<T>| {
        let mut out: Vec<Vec<T>> = Vec::new();
        let n = v.len();
        // Halves first: the biggest structural reductions.
        if n / 2 >= min_len && n > 1 {
            out.push(v[..n / 2].to_vec());
            out.push(v[n - n / 2..].to_vec());
        }
        // Single-element drops.
        if n > min_len {
            for i in 0..n {
                let mut smaller = v.clone();
                smaller.remove(i);
                out.push(smaller);
            }
        }
        // Element-wise shrinks (first candidate each, to bound fan-out).
        for i in 0..n {
            for cand in elem.shrinks(&v[i]).into_iter().take(2) {
                let mut e = v.clone();
                e[i] = cand;
                out.push(e);
            }
        }
        out
    })
}

macro_rules! tuple_gen {
    ($fname:ident, $($g:ident: $T:ident @ $idx:tt),+) => {
        /// Zips component generators into a tuple generator; shrinks one
        /// component at a time.
        #[allow(clippy::too_many_arguments)]
        pub fn $fname<$($T: Clone + 'static),+>($($g: Gen<$T>),+) -> Gen<($($T,)+)> {
            let samplers = ($($g.clone(),)+);
            let shrinkers = ($($g,)+);
            Gen::from_fn(move |rng| ($(samplers.$idx.sample(rng),)+))
                .with_shrink(move |v| {
                    let mut out = Vec::new();
                    $(
                        for cand in shrinkers.$idx.shrinks(&v.$idx) {
                            let mut t = v.clone();
                            t.$idx = cand;
                            out.push(t);
                        }
                    )+
                    out
                })
        }
    };
}

tuple_gen!(tuple2, a: A @ 0, b: B @ 1);
tuple_gen!(tuple3, a: A @ 0, b: B @ 1, c: C @ 2);
tuple_gen!(tuple4, a: A @ 0, b: B @ 1, c: C @ 2, d: D @ 3);
tuple_gen!(tuple5, a: A @ 0, b: B @ 1, c: C @ 2, d: D @ 3, e: E @ 4);
tuple_gen!(tuple6, a: A @ 0, b: B @ 1, c: C @ 2, d: D @ 3, e: E @ 4, f: F @ 5);
tuple_gen!(tuple7, a: A @ 0, b: B @ 1, c: C @ 2, d: D @ 3, e: E @ 4, f: F @ 5, g: G @ 6);
tuple_gen!(tuple8, a: A @ 0, b: B @ 1, c: C @ 2, d: D @ 3, e: E @ 4, f: F @ 5, g: G @ 6, h: H @ 7);

/// Mixes the property name into the base seed so distinct properties
/// explore independent streams under the same configuration.
fn name_hash(name: &str) -> u64 {
    // FNV-1a.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn run_case<T>(prop: &impl Fn(&T), value: &T) -> Result<(), String> {
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| prop(value)));
    match outcome {
        Ok(()) => Ok(()),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            Err(msg)
        }
    }
}

/// Checks `prop` over `Config::cases` values drawn from `gen`, using the
/// default (environment-derived) configuration. Panics with a replayable
/// seed on failure.
pub fn check<T: Clone + Debug + 'static>(name: &str, gen: &Gen<T>, prop: impl Fn(&T)) {
    check_with(Config::default(), name, gen, prop);
}

/// [`check`] with an explicit configuration.
pub fn check_with<T: Clone + Debug + 'static>(
    config: Config,
    name: &str,
    gen: &Gen<T>,
    prop: impl Fn(&T),
) {
    // Replay mode: run exactly one case, loudly, without catching.
    if let Ok(replay) = std::env::var("IPIM_PROP_REPLAY") {
        let case_seed: u64 = replay
            .parse()
            .unwrap_or_else(|_| panic!("IPIM_PROP_REPLAY must be a decimal u64, got {replay:?}"));
        let value = gen.sample(&mut Rng::new(case_seed));
        eprintln!("[simkit] replaying property {name:?} with seed {case_seed}:\n  {value:?}");
        prop(&value);
        return;
    }

    let mut stream = config.seed ^ name_hash(name);
    // Quiet the default panic hook while we probe cases: shrinking relies
    // on catching many expected panics.
    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let mut failure: Option<(u64, T, String)> = None;
    for _ in 0..config.cases {
        let case_seed = splitmix64(&mut stream);
        let value = gen.sample(&mut Rng::new(case_seed));
        if let Err(msg) = run_case(&prop, &value) {
            // Greedy shrink: take the first failing candidate, repeat.
            let mut best = value;
            let mut best_msg = msg;
            let mut iters = 0;
            'outer: while iters < config.max_shrinks {
                for cand in gen.shrinks(&best) {
                    iters += 1;
                    if let Err(m) = run_case(&prop, &cand) {
                        best = cand;
                        best_msg = m;
                        continue 'outer;
                    }
                    if iters >= config.max_shrinks {
                        break;
                    }
                }
                break;
            }
            failure = Some((case_seed, best, best_msg));
            break;
        }
    }
    panic::set_hook(prev_hook);
    if let Some((case_seed, value, msg)) = failure {
        panic!(
            "property {name:?} failed.\n  minimal counterexample: {value:?}\n  \
             cause: {msg}\n  replay exactly (shrunk case shown, original seed below):\n  \
             IPIM_PROP_REPLAY={case_seed} cargo test {name}"
        );
    }
}
