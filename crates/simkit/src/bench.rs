//! Micro-benchmark timer: warmup, fixed iteration count, robust summary
//! statistics, and JSON-lines output for the figure harness.
//!
//! Replaces `criterion` for `crates/bench/benches/figures.rs`. Each
//! [`Bench::bench`] call runs the closure `warmup` times untimed, then
//! `iters` timed iterations, and records min/median/p95/mean wall-clock
//! nanoseconds. Results append to `results/<suite>.jsonl`, one JSON
//! object per line, so successive runs can be diffed by later perf PRs.

use std::fmt::Write as _;
use std::fs;
use std::hint::black_box;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Iteration counts for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Untimed iterations run first to warm caches and the allocator.
    pub warmup: u32,
    /// Timed iterations contributing to the statistics.
    pub iters: u32,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig { warmup: 3, iters: 20 }
    }
}

/// Summary statistics over per-iteration wall-clock times.
#[derive(Debug, Clone, PartialEq)]
pub struct Stats {
    /// Fastest iteration, nanoseconds.
    pub min_ns: u64,
    /// Median iteration, nanoseconds.
    pub median_ns: u64,
    /// 95th-percentile iteration, nanoseconds.
    pub p95_ns: u64,
    /// Mean iteration, nanoseconds.
    pub mean_ns: u64,
    /// Number of timed iterations.
    pub iters: u32,
}

impl Stats {
    /// Computes summary statistics from raw per-iteration samples.
    ///
    /// Panics on an empty sample set.
    pub fn from_samples(samples_ns: &[u64]) -> Stats {
        assert!(!samples_ns.is_empty(), "no samples");
        let mut sorted = samples_ns.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        // Nearest-rank (ceiling) quantiles: p95 of few samples is the max.
        let pick = |q_num: usize, q_den: usize| sorted[((n - 1) * q_num).div_ceil(q_den)];
        Stats {
            min_ns: sorted[0],
            median_ns: pick(1, 2),
            p95_ns: pick(95, 100),
            mean_ns: (sorted.iter().sum::<u64>() / n as u64),
            iters: n as u32,
        }
    }
}

/// A benchmark suite writing JSON-lines results under `results/`.
pub struct Bench {
    suite: String,
    config: BenchConfig,
    out_path: PathBuf,
    lines: Vec<String>,
}

/// Locates the workspace `results/` directory: honors `IPIM_RESULTS_DIR`,
/// else walks up from the current directory looking for an existing
/// `results/`, else uses `./results`.
fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("IPIM_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    let mut cur = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let candidate = cur.join("results");
        if candidate.is_dir() {
            return candidate;
        }
        if !cur.pop() {
            return PathBuf::from("results");
        }
    }
}

impl Bench {
    /// Creates a suite; results go to `results/<suite>.jsonl`.
    pub fn new(suite: &str) -> Bench {
        Bench {
            suite: suite.to_string(),
            config: BenchConfig::default(),
            out_path: results_dir().join(format!("{suite}.jsonl")),
            lines: Vec::new(),
        }
    }

    /// Overrides the default iteration counts for subsequent benchmarks.
    pub fn with_config(mut self, config: BenchConfig) -> Bench {
        self.config = config;
        self
    }

    /// Runs one benchmark with the suite's current config.
    pub fn bench<R>(&mut self, name: &str, f: impl FnMut() -> R) -> Stats {
        let cfg = self.config;
        self.bench_with(cfg, name, f)
    }

    /// Runs one benchmark with an explicit config (e.g. fewer iterations
    /// for expensive cycle-accurate simulations).
    pub fn bench_with<R>(
        &mut self,
        config: BenchConfig,
        name: &str,
        mut f: impl FnMut() -> R,
    ) -> Stats {
        for _ in 0..config.warmup {
            black_box(f());
        }
        let mut samples = Vec::with_capacity(config.iters as usize);
        for _ in 0..config.iters.max(1) {
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed().as_nanos() as u64);
        }
        let stats = Stats::from_samples(&samples);
        let mut line = String::new();
        write!(
            line,
            r#"{{"suite":"{}","name":"{}","iters":{},"min_ns":{},"median_ns":{},"p95_ns":{},"mean_ns":{}}}"#,
            escape(&self.suite),
            escape(name),
            stats.iters,
            stats.min_ns,
            stats.median_ns,
            stats.p95_ns,
            stats.mean_ns
        )
        .expect("write to String");
        println!(
            "{:<40} min {:>12} ns   median {:>12} ns   p95 {:>12} ns",
            name, stats.min_ns, stats.median_ns, stats.p95_ns
        );
        self.lines.push(line);
        stats
    }

    /// Flushes all recorded lines, appending to `results/<suite>.jsonl`.
    /// Called automatically on drop; explicit calls surface IO errors.
    pub fn finish(&mut self) -> std::io::Result<()> {
        if self.lines.is_empty() {
            return Ok(());
        }
        if let Some(parent) = self.out_path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut file = fs::OpenOptions::new().create(true).append(true).open(&self.out_path)?;
        for line in self.lines.drain(..) {
            writeln!(file, "{line}")?;
        }
        println!("[simkit] wrote results to {}", self.out_path.display());
        Ok(())
    }
}

impl Drop for Bench {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

/// Minimal JSON string escaping (quotes and backslashes; names are ASCII).
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}
