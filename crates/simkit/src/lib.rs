//! Zero-dependency determinism toolkit for the iPIM reproduction.
//!
//! The whole workspace builds offline with no external crates (see
//! DESIGN.md §5, "Zero external dependencies"). This crate supplies the
//! three pieces of infrastructure the simulator would otherwise pull from
//! crates.io:
//!
//! * [`rng`] — a seedable xoshiro256++ PRNG (SplitMix64-initialized) with
//!   the integer/float/range/shuffle helpers workload synthesis needs,
//! * [`prop`] — a minimal property-testing harness (generator combinators,
//!   greedy shrinking, failure-seed replay) replacing `proptest`,
//! * [`bench`] — a micro-benchmark timer (warmup, min/median/p95, JSON
//!   lines under `results/`) replacing `criterion`.
//!
//! Everything here is deterministic given a seed; no wall-clock, thread,
//! or platform state leaks into generated values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod prop;
pub mod rng;

pub use bench::{Bench, BenchConfig, Stats};
pub use prop::{check, check_with, Config, Gen};
pub use rng::Rng;
