//! # ipim-trace — zero-overhead observability for the iPIM simulator
//!
//! A hermetic (std-only) tracing and metrics subsystem shared by every
//! simulator crate:
//!
//! - **Structured events** ([`TraceEvent`]): typed records of the
//!   micro-architectural moments the final counters average away — DRAM
//!   command issue, row open/close, refresh windows, NoC flit hops and
//!   credit stalls, SIMB issue/stall transitions, scratchpad traffic,
//!   barrier entry/release, and the skip-ahead engine's jumped windows.
//! - **Sinks** ([`TraceSink`]): where events go. [`RingSink`] keeps the
//!   last *N* records in memory; [`SamplingSink`] keeps a seeded 1-in-N
//!   subset for runs whose event volume would overflow any practical ring;
//!   [`NullSink`] discards everything. The
//!   [`Tracer`] handle each component holds makes the disabled path one
//!   branch on an `Option` — no sink, no formatting, no allocation.
//! - **Metrics** ([`MetricsRegistry`]): a deterministic hierarchical
//!   registry of counters/gauges/histograms keyed by component path
//!   (`cube0/vault0/pg3/bank1/...`), built from the simulator's final
//!   counters after a run — never touched on the hot path.
//! - **Exporters** ([`chrome`]): Chrome `trace_event` JSON for
//!   `chrome://tracing` / Perfetto, plus a plain-text metrics table.
//!
//! ## Overhead contract
//!
//! Instrumented components call [`Tracer::emit`] with a closure; when no
//! sink is attached the closure is never run, so the disabled cost is a
//! single `Option` discriminant test per potential event. The CI budget is
//! ≤2 % wall-clock on StencilChain with tracing off (see DESIGN.md
//! §"Observability").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capture;
pub mod chrome;
mod event;
pub mod json;
mod metrics;
mod sink;

pub use capture::TraceCapture;
pub use event::{CompId, CompRegistry, DramCmdKind, SpadKind, TraceEvent};
pub use metrics::{Histogram, Metric, MetricsRegistry};
pub use sink::{NullSink, Record, RingSink, SamplingSink, SharedSink, TraceSink, Tracer};
