//! Hierarchical metrics registry: counters, gauges and histograms keyed by
//! component path.
//!
//! The registry is built *after* a run from the simulator's final counters
//! (never on the hot path), stored in a `BTreeMap` so iteration and the
//! rendered table are deterministic — which lets the engine-equivalence
//! tests assert snapshot equality across engines.

use std::collections::BTreeMap;

/// Log2-bucketed histogram of `u64` samples.
///
/// Bucket `i` counts samples whose value has bit length `i` (bucket 0 holds
/// the value 0), which keeps observation O(1) with no configuration while
/// still answering "what order of magnitude" questions — the resolution
/// latency distributions actually need.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self { buckets: [0; 65], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    /// Bucket index of `v`: its bit length (0 for 0, 64 for `u64::MAX`).
    fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound (exclusive power of two) of the bucket containing the
    /// `q`-quantile sample, `q` in `[0, 1]`. Returns 0 when empty.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket i holds values in [2^(i-1), 2^i); bucket 0 holds 0.
                return if i >= 64 { u64::MAX } else { (1u64 << i).saturating_sub(1) };
            }
        }
        self.max
    }
}

/// One metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonic count.
    Counter(u64),
    /// Point-in-time value.
    Gauge(f64),
    /// Sample distribution (boxed: a `Histogram` is ~0.5 KiB and would
    /// otherwise dominate the enum's size for every counter entry).
    Histogram(Box<Histogram>),
}

/// A deterministic, hierarchical collection of metrics.
///
/// Paths use `/` separators mirroring the component hierarchy
/// (`cube0/vault0/pg3/bank1/acts`). Registering the same path twice merges:
/// counters add, gauges overwrite, histogram observations accumulate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    entries: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// Adds `n` to the counter at `path` (creating it at 0).
    ///
    /// # Panics
    ///
    /// Panics if `path` already holds a non-counter metric.
    pub fn counter_add(&mut self, path: &str, n: u64) {
        match self.entries.entry(path.to_string()).or_insert(Metric::Counter(0)) {
            Metric::Counter(c) => *c += n,
            other => panic!("metric {path} is not a counter: {other:?}"),
        }
    }

    /// Sets the gauge at `path`.
    ///
    /// # Panics
    ///
    /// Panics if `path` already holds a non-gauge metric.
    pub fn gauge_set(&mut self, path: &str, v: f64) {
        match self.entries.entry(path.to_string()).or_insert(Metric::Gauge(0.0)) {
            Metric::Gauge(g) => *g = v,
            other => panic!("metric {path} is not a gauge: {other:?}"),
        }
    }

    /// Records `v` into the histogram at `path` (creating it empty).
    ///
    /// # Panics
    ///
    /// Panics if `path` already holds a non-histogram metric.
    pub fn histogram_observe(&mut self, path: &str, v: u64) {
        match self
            .entries
            .entry(path.to_string())
            .or_insert_with(|| Metric::Histogram(Box::default()))
        {
            Metric::Histogram(h) => h.observe(v),
            other => panic!("metric {path} is not a histogram: {other:?}"),
        }
    }

    /// The metric at `path`, if present.
    pub fn get(&self, path: &str) -> Option<&Metric> {
        self.entries.get(path)
    }

    /// Convenience: the counter value at `path`, or 0.
    pub fn counter(&self, path: &str) -> u64 {
        match self.entries.get(path) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(path, metric)` in sorted path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Renders an aligned plain-text table, one metric per line, sorted by
    /// path. Deterministic: equal registries render identical tables.
    pub fn render_table(&self) -> String {
        let path_w = self.entries.keys().map(String::len).max().unwrap_or(4).max(4);
        let mut out = String::new();
        out.push_str(&format!("{:<path_w$}  {:<9}  value\n", "path", "type"));
        for (path, metric) in &self.entries {
            let (kind, value) = match metric {
                Metric::Counter(c) => ("counter", c.to_string()),
                Metric::Gauge(g) => ("gauge", format!("{g:.6}")),
                Metric::Histogram(h) => (
                    "histogram",
                    format!(
                        "count={} min={} mean={:.1} p50<={} max={}",
                        h.count(),
                        h.min(),
                        h.mean(),
                        h.quantile_bound(0.5),
                        h.max()
                    ),
                ),
            };
            out.push_str(&format!("{path:<path_w$}  {kind:<9}  {value}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::default();
        m.counter_add("a/b", 2);
        m.counter_add("a/b", 3);
        assert_eq!(m.counter("a/b"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert!(matches!(m.get("a/b"), Some(Metric::Counter(5))));
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = MetricsRegistry::default();
        m.gauge_set("ipc", 0.5);
        m.gauge_set("ipc", 0.63);
        assert!(matches!(m.get("ipc"), Some(Metric::Gauge(g)) if (*g - 0.63).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_confusion_panics() {
        let mut m = MetricsRegistry::default();
        m.gauge_set("x", 1.0);
        m.counter_add("x", 1);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 10, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 1116);
        // p50: rank ceil(0.5*7)=4 → the sample 3 → bucket bound 3.
        assert_eq!(h.quantile_bound(0.5), 3);
        assert!(h.quantile_bound(1.0) >= 1000);
        assert_eq!(Histogram::default().quantile_bound(0.5), 0);
        assert_eq!(Histogram::default().min(), 0);
        assert_eq!(Histogram::default().mean(), 0.0);
    }

    #[test]
    fn histogram_extreme_values() {
        let mut h = Histogram::default();
        h.observe(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile_bound(0.5), u64::MAX);
    }

    #[test]
    fn table_is_sorted_and_deterministic() {
        let mut m = MetricsRegistry::default();
        m.counter_add("z/last", 1);
        m.counter_add("a/first", 2);
        m.gauge_set("m/middle", 1.5);
        m.histogram_observe("h/hist", 7);
        let t1 = m.render_table();
        let t2 = m.clone().render_table();
        assert_eq!(t1, t2);
        let a = t1.find("a/first").unwrap();
        let mm = t1.find("m/middle").unwrap();
        let z = t1.find("z/last").unwrap();
        assert!(a < mm && mm < z, "{t1}");
        assert!(t1.contains("1.500000"));
        assert!(t1.contains("count=1"));
        assert_eq!(m.len(), 4);
        assert!(!m.is_empty());
        assert_eq!(m.iter().count(), 4);
    }
}
