//! Sinks and the per-component [`Tracer`] handle.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use crate::event::{CompId, TraceEvent};

/// One recorded event: when, where, what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// Simulation cycle at which the event occurred.
    pub now: u64,
    /// Component that emitted it.
    pub comp: CompId,
    /// The event itself.
    pub event: TraceEvent,
}

/// Destination for trace events.
///
/// The contract is intentionally tiny: a sink receives fully formed
/// [`Record`]s in emission order and may do anything with them (buffer,
/// count, drop). Sinks are driven from the single-threaded simulation loop,
/// so implementations need no synchronization.
pub trait TraceSink {
    /// Accepts one record.
    fn record(&mut self, rec: Record);
}

/// A sink that discards every event.
///
/// Exists mostly for tests and as documentation of the disabled path; a
/// detached [`Tracer`] is cheaper still because the event payload is never
/// even constructed.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _rec: Record) {}
}

/// A bounded in-memory recorder keeping the most recent events.
///
/// When the buffer is full the oldest record is dropped and counted; the
/// exporter reports the drop count so a truncated trace is never mistaken
/// for a complete one.
#[derive(Debug, Clone)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<Record>,
    dropped: u64,
    total: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { capacity, buf: VecDeque::new(), dropped: 0, total: 0 }
    }

    /// Records currently buffered, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.buf.iter()
    }

    /// Takes the buffered records, oldest first, leaving the ring empty.
    pub fn drain(&mut self) -> Vec<Record> {
        self.buf.drain(..).collect()
    }

    /// Number of records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of records ever offered to the ring.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, rec: Record) {
        self.total += 1;
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec);
    }
}

/// A sink shared by every instrumented component of one machine.
///
/// The simulation is single-threaded, so `Rc<RefCell<...>>` is the right
/// tool: cloning a tracer is a pointer copy and recording takes a
/// non-reentrant borrow for the duration of one push.
pub type SharedSink = Rc<RefCell<dyn TraceSink>>;

/// The per-component handle every instrumented struct owns.
///
/// A detached tracer (`Tracer::default()`) is the fast path: [`emit`]
/// (Tracer::emit) tests one `Option` discriminant and returns, and the
/// event-constructing closure is never invoked. Attached tracers share one
/// [`SharedSink`].
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<SharedSink>,
}

impl Tracer {
    /// A tracer recording into `sink`.
    pub fn attached(sink: SharedSink) -> Self {
        Self { sink: Some(sink) }
    }

    /// A detached tracer (records nothing; the default).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether a sink is attached. Emit sites with non-trivial payload
    /// preparation (e.g. a component-id lookup) may guard on this to keep
    /// the disabled path free of even that work.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// The attached sink, if any (used by the machine to hand the same sink
    /// to subcomponents).
    pub fn sink(&self) -> Option<&SharedSink> {
        self.sink.as_ref()
    }

    /// Records the event produced by `f` at cycle `now` on component
    /// `comp`. When detached, `f` is never called.
    #[inline]
    pub fn emit(&self, now: u64, comp: CompId, f: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().record(Record { now, comp, event: f() });
        }
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer").field("enabled", &self.enabled()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DramCmdKind;

    fn rec(now: u64) -> Record {
        Record { now, comp: CompId(0), event: TraceEvent::DramCmd { kind: DramCmdKind::Act } }
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut ring = RingSink::new(2);
        for t in 0..5 {
            ring.record(rec(t));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        assert_eq!(ring.total(), 5);
        let times: Vec<u64> = ring.records().map(|r| r.now).collect();
        assert_eq!(times, vec![3, 4]);
        assert_eq!(ring.drain().len(), 2);
        assert!(ring.is_empty());
    }

    #[test]
    fn ring_capacity_clamped_to_one() {
        let mut ring = RingSink::new(0);
        ring.record(rec(1));
        ring.record(rec(2));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.records().next().unwrap().now, 2);
    }

    #[test]
    fn detached_tracer_never_builds_the_event() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.emit(0, CompId(0), || unreachable!("closure must not run when detached"));
    }

    #[test]
    fn attached_tracer_records() {
        let ring = Rc::new(RefCell::new(RingSink::new(8)));
        let shared: SharedSink = ring.clone();
        let t = Tracer::attached(shared);
        assert!(t.enabled());
        t.emit(7, CompId(3), || TraceEvent::CreditStall);
        let r = ring.borrow().records().next().copied().unwrap();
        assert_eq!(r, Record { now: 7, comp: CompId(3), event: TraceEvent::CreditStall });
        // Clones share the sink.
        let t2 = t.clone();
        t2.emit(8, CompId(4), || TraceEvent::CreditStall);
        assert_eq!(ring.borrow().len(), 2);
        assert!(format!("{t:?}").contains("enabled"));
    }

    #[test]
    fn null_sink_discards() {
        let mut s = NullSink;
        s.record(rec(0));
    }
}
