//! Sinks and the per-component [`Tracer`] handle.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use ipim_simkit::Rng;

use crate::event::{CompId, TraceEvent};

/// One recorded event: when, where, what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// Simulation cycle at which the event occurred.
    pub now: u64,
    /// Component that emitted it.
    pub comp: CompId,
    /// The event itself.
    pub event: TraceEvent,
}

/// Destination for trace events.
///
/// The contract is intentionally tiny: a sink receives fully formed
/// [`Record`]s in emission order and may do anything with them (buffer,
/// count, drop). Sinks are driven from the single-threaded simulation loop,
/// so implementations need no synchronization.
pub trait TraceSink {
    /// Accepts one record.
    fn record(&mut self, rec: Record);
}

/// A sink that discards every event.
///
/// Exists mostly for tests and as documentation of the disabled path; a
/// detached [`Tracer`] is cheaper still because the event payload is never
/// even constructed.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _rec: Record) {}
}

/// A bounded in-memory recorder keeping the most recent events.
///
/// When the buffer is full the oldest record is dropped and counted; the
/// exporter reports the drop count so a truncated trace is never mistaken
/// for a complete one.
#[derive(Debug, Clone)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<Record>,
    dropped: u64,
    total: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { capacity, buf: VecDeque::new(), dropped: 0, total: 0 }
    }

    /// Records currently buffered, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.buf.iter()
    }

    /// Takes the buffered records, oldest first, leaving the ring empty.
    pub fn drain(&mut self) -> Vec<Record> {
        self.buf.drain(..).collect()
    }

    /// Number of records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of records ever offered to the ring.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, rec: Record) {
        self.total += 1;
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec);
    }
}

/// A 1-in-N sampling front-end over a [`RingSink`].
///
/// Multi-cube machines emit orders of magnitude more events than any
/// practical ring holds; recording everything into a full ring silently
/// keeps only the tail of the run. Sampling instead keeps a statistically
/// representative 1-in-`every` subset across the *whole* run, with the
/// decision driven by a seeded simkit PRNG so two identically configured
/// captures sample the same records.
///
/// `every <= 1` keeps every record (the sink degenerates to its inner
/// ring). Records rejected by the sampler are counted in
/// [`sampled_out`](SamplingSink::sampled_out), and `total()` still counts
/// every record ever offered, so a consumer can rescale sampled counts by
/// `total / kept`.
#[derive(Debug, Clone)]
pub struct SamplingSink {
    inner: RingSink,
    every: u64,
    rng: Rng,
    sampled_out: u64,
    total: u64,
}

impl SamplingSink {
    /// Creates a sampler keeping 1-in-`every` records (deterministically,
    /// from `seed`) in a ring of `capacity` records.
    pub fn new(capacity: usize, every: u64, seed: u64) -> Self {
        Self {
            inner: RingSink::new(capacity),
            every,
            rng: Rng::new(seed),
            sampled_out: 0,
            total: 0,
        }
    }

    /// The wrapped ring, for draining a finished capture.
    pub fn ring_mut(&mut self) -> &mut RingSink {
        &mut self.inner
    }

    /// Records rejected by the sampling decision (never offered to the
    /// ring).
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out
    }

    /// Records ever offered to the sampler (kept + sampled out).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records kept (offered to the inner ring).
    pub fn kept(&self) -> u64 {
        self.total - self.sampled_out
    }
}

impl TraceSink for SamplingSink {
    fn record(&mut self, rec: Record) {
        self.total += 1;
        if self.every <= 1 || self.rng.next_u64().is_multiple_of(self.every) {
            self.inner.record(rec);
        } else {
            self.sampled_out += 1;
        }
    }
}

/// A sink shared by every instrumented component of one machine.
///
/// The simulation is single-threaded, so `Rc<RefCell<...>>` is the right
/// tool: cloning a tracer is a pointer copy and recording takes a
/// non-reentrant borrow for the duration of one push.
pub type SharedSink = Rc<RefCell<dyn TraceSink>>;

/// The per-component handle every instrumented struct owns.
///
/// A detached tracer (`Tracer::default()`) is the fast path: [`emit`]
/// (Tracer::emit) tests one `Option` discriminant and returns, and the
/// event-constructing closure is never invoked. Attached tracers share one
/// [`SharedSink`].
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<SharedSink>,
}

impl Tracer {
    /// A tracer recording into `sink`.
    pub fn attached(sink: SharedSink) -> Self {
        Self { sink: Some(sink) }
    }

    /// A detached tracer (records nothing; the default).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether a sink is attached. Emit sites with non-trivial payload
    /// preparation (e.g. a component-id lookup) may guard on this to keep
    /// the disabled path free of even that work.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// The attached sink, if any (used by the machine to hand the same sink
    /// to subcomponents).
    pub fn sink(&self) -> Option<&SharedSink> {
        self.sink.as_ref()
    }

    /// Records the event produced by `f` at cycle `now` on component
    /// `comp`. When detached, `f` is never called.
    #[inline]
    pub fn emit(&self, now: u64, comp: CompId, f: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().record(Record { now, comp, event: f() });
        }
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer").field("enabled", &self.enabled()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DramCmdKind;

    fn rec(now: u64) -> Record {
        Record { now, comp: CompId(0), event: TraceEvent::DramCmd { kind: DramCmdKind::Act } }
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut ring = RingSink::new(2);
        for t in 0..5 {
            ring.record(rec(t));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        assert_eq!(ring.total(), 5);
        let times: Vec<u64> = ring.records().map(|r| r.now).collect();
        assert_eq!(times, vec![3, 4]);
        assert_eq!(ring.drain().len(), 2);
        assert!(ring.is_empty());
    }

    #[test]
    fn ring_capacity_clamped_to_one() {
        let mut ring = RingSink::new(0);
        ring.record(rec(1));
        ring.record(rec(2));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.records().next().unwrap().now, 2);
    }

    #[test]
    fn detached_tracer_never_builds_the_event() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.emit(0, CompId(0), || unreachable!("closure must not run when detached"));
    }

    #[test]
    fn attached_tracer_records() {
        let ring = Rc::new(RefCell::new(RingSink::new(8)));
        let shared: SharedSink = ring.clone();
        let t = Tracer::attached(shared);
        assert!(t.enabled());
        t.emit(7, CompId(3), || TraceEvent::CreditStall);
        let r = ring.borrow().records().next().copied().unwrap();
        assert_eq!(r, Record { now: 7, comp: CompId(3), event: TraceEvent::CreditStall });
        // Clones share the sink.
        let t2 = t.clone();
        t2.emit(8, CompId(4), || TraceEvent::CreditStall);
        assert_eq!(ring.borrow().len(), 2);
        assert!(format!("{t:?}").contains("enabled"));
    }

    #[test]
    fn null_sink_discards() {
        let mut s = NullSink;
        s.record(rec(0));
    }

    #[test]
    fn sampler_keeps_roughly_one_in_n() {
        const OFFERED: u64 = 100_000;
        const EVERY: u64 = 8;
        let mut s = SamplingSink::new(OFFERED as usize, EVERY, 42);
        for t in 0..OFFERED {
            s.record(rec(t));
        }
        assert_eq!(s.total(), OFFERED);
        assert_eq!(s.kept() + s.sampled_out(), OFFERED);
        let expected = OFFERED / EVERY;
        let kept = s.kept();
        // A binomial(100_000, 1/8) sample has σ ≈ 105; ±5 % is ~60σ of
        // headroom, tight enough to catch an off-by-one in the modulus.
        let tolerance = expected / 20;
        assert!(
            kept.abs_diff(expected) <= tolerance,
            "kept {kept}, expected {expected} ± {tolerance}"
        );
        // The kept subset spans the whole run, not just the tail.
        let first = s.ring_mut().records().next().unwrap().now;
        assert!(first < EVERY * 16, "first kept record at {first}");
    }

    #[test]
    fn sampler_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut s = SamplingSink::new(4096, 4, seed);
            for t in 0..1000 {
                s.record(rec(t));
            }
            let kept: Vec<u64> = s.ring_mut().records().map(|r| r.now).collect();
            kept
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn sampler_every_one_keeps_everything() {
        for every in [0, 1] {
            let mut s = SamplingSink::new(64, every, 0);
            for t in 0..32 {
                s.record(rec(t));
            }
            assert_eq!(s.kept(), 32);
            assert_eq!(s.sampled_out(), 0);
        }
    }
}
