//! A minimal std-only JSON parser, used by the Chrome-export lint and the
//! exporter tests (the hermetic policy rules out serde).
//!
//! Supports the full JSON grammar the exporter can produce: objects,
//! arrays, strings with `\uXXXX`/standard escapes, numbers, booleans and
//! null. Numbers are kept as `f64`, which is exact for every integer the
//! exporter writes (cycle counts below 2^53).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (sorted keys; duplicate keys keep the last value).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a human-readable description (with byte offset) of the first
/// syntax error, including trailing garbage after the document.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let ch_len = std::str::from_utf8(rest)
                        .map_err(|e| e.to_string())?
                        .chars()
                        .next()
                        .map(char::len_utf8)
                        .ok_or("empty")?;
                    s.push_str(std::str::from_utf8(&rest[..ch_len]).expect("boundary"));
                    self.pos += ch_len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Value::Number).map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny"},"t":true,"n":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("t"), Some(&Value::Bool(true)));
        assert_eq!(v.get("n"), Some(&Value::Null));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""A\"\\/\b\f\t\r snowman ☃""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "A\"\\/\u{8}\u{c}\t\r snowman ☃");
        let lit = parse("\"héllo\"").unwrap();
        assert_eq!(lit.as_str(), Some("héllo"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("01a").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(BTreeMap::new()));
        assert_eq!(parse(" [ { } , [ ] ] ").unwrap().as_array().unwrap().len(), 2);
    }
}
