//! A finished trace: the drained ring plus the component registry.

use crate::chrome;
use crate::event::CompRegistry;
use crate::sink::Record;

/// Everything captured by one traced run, detached from the machine.
///
/// Produced by `ipim_core::Session` when `MachineConfig::trace.enabled` is
/// set: the session wires a [`RingSink`](crate::RingSink) through the
/// machine, runs, then drains the ring into this self-contained value.
#[derive(Debug, Clone, Default)]
pub struct TraceCapture {
    /// Captured records in emission order (oldest first).
    pub records: Vec<Record>,
    /// Component-id to hierarchical-path mapping for `records`.
    pub components: CompRegistry,
    /// Records evicted because the ring filled.
    pub dropped: u64,
    /// Records rejected up front by a sampling sink (0 when the capture
    /// recorded every event).
    pub sampled_out: u64,
    /// Records emitted in total (`records.len() + dropped + sampled_out`).
    pub total: u64,
}

impl TraceCapture {
    /// Renders the capture as Chrome `trace_event` JSON, loadable in
    /// `chrome://tracing` or Perfetto.
    pub fn to_chrome_json(&self) -> String {
        chrome::export(&self.records, &self.components)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    #[test]
    fn capture_round_trips_through_chrome_export() {
        let mut components = CompRegistry::default();
        let comp = components.register("cube0/vault0/core");
        let records = vec![
            Record {
                now: 1,
                comp,
                event: TraceEvent::SimbIssue { pc: 0, category: "computation" },
            },
            Record { now: 2, comp, event: TraceEvent::BarrierEnter { phase: 0 } },
            Record { now: 9, comp, event: TraceEvent::BarrierRelease },
        ];
        let cap = TraceCapture { records, components, dropped: 0, sampled_out: 0, total: 3 };
        let json = cap.to_chrome_json();
        let report = chrome::lint(&json).expect("valid trace");
        // One metadata row for the component plus the three records.
        assert_eq!(report.events, 4);
        assert_eq!(report.spans, 1);
    }

    #[test]
    fn empty_capture_exports_cleanly() {
        let cap = TraceCapture::default();
        assert!(chrome::lint(&cap.to_chrome_json()).is_ok());
    }
}
