//! Chrome `trace_event` JSON export, plus a structural lint.
//!
//! The exporter produces the JSON-object form of the trace-event format
//! (`{"traceEvents": [...]}`) that `chrome://tracing` and Perfetto load
//! directly. One simulated cycle maps to one timestamp unit. Components
//! become threads (`tid` = [`CompId`]) named after their registry path via
//! `thread_name` metadata events, so the viewer shows the machine hierarchy
//! as a thread list.
//!
//! Span repair: a ring-buffered recording can truncate the *front* of the
//! stream, leaving end events without a begin (dropped) and, at the tail,
//! begins without an end (auto-closed at the final timestamp). The result
//! always passes [`lint`]: balanced B/E per thread, non-decreasing
//! timestamps.

use crate::event::{CompId, CompRegistry, TraceEvent};
use crate::json;
use crate::sink::Record;

/// Structural summary returned by [`lint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LintReport {
    /// Trace events of every phase, metadata included.
    pub events: usize,
    /// `B`/`E` span pairs.
    pub spans: usize,
    /// `i` instant events.
    pub instants: usize,
    /// `X` complete events.
    pub completes: usize,
    /// Events whose `args` object was checked against the exporter's
    /// per-event schema (known names only).
    pub args_checked: usize,
}

/// Escapes `s` for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// How one event renders: a span boundary, an instant, or a complete event.
enum Render {
    Begin { name: &'static str, args: Option<String> },
    End { name: &'static str },
    Instant { name: &'static str, args: Option<String> },
    Complete { name: &'static str, dur: u64, args: Option<String> },
}

fn render_of(ev: &TraceEvent) -> Render {
    match *ev {
        TraceEvent::RowOpen { row } => {
            Render::Begin { name: "row_open", args: Some(format!("{{\"row\":{row}}}")) }
        }
        TraceEvent::RowClose => Render::End { name: "row_open" },
        TraceEvent::RefreshBegin => Render::Begin { name: "refresh", args: None },
        TraceEvent::RefreshEnd => Render::End { name: "refresh" },
        TraceEvent::BarrierEnter { phase } => {
            Render::Begin { name: "barrier", args: Some(format!("{{\"phase\":{phase}}}")) }
        }
        TraceEvent::BarrierRelease => Render::End { name: "barrier" },
        TraceEvent::SkipWindow { delta } => Render::Complete {
            name: "skip_window",
            dur: delta,
            args: Some(format!("{{\"delta\":{delta}}}")),
        },
        TraceEvent::DramCmd { .. } => Render::Instant { name: ev.name(), args: None },
        TraceEvent::BurstDone { read } => {
            Render::Instant { name: "burst_done", args: Some(format!("{{\"read\":{read}}}")) }
        }
        TraceEvent::FlitHop { delivered } => Render::Instant {
            name: "flit_hop",
            args: Some(format!("{{\"delivered\":{delivered}}}")),
        },
        TraceEvent::CreditStall => Render::Instant { name: "credit_stall", args: None },
        TraceEvent::SimbIssue { pc, category } => Render::Instant {
            name: "simb_issue",
            args: Some(format!("{{\"pc\":{pc},\"category\":\"{}\"}}", escape(category))),
        },
        TraceEvent::SimbStall { reason } => Render::Instant {
            name: "simb_stall",
            args: Some(format!("{{\"reason\":\"{}\"}}", escape(reason))),
        },
        TraceEvent::SpadAccess { kind, count } => Render::Instant {
            name: "spad_access",
            args: Some(format!("{{\"spad\":\"{}\",\"count\":{count}}}", kind.name())),
        },
        TraceEvent::SerdesSend { bytes } => {
            Render::Instant { name: "serdes_send", args: Some(format!("{{\"bytes\":{bytes}}}")) }
        }
    }
}

/// Exports `records` (in emission order) as a Chrome trace JSON document.
///
/// `comps` provides the thread names; components that never emitted still
/// get their metadata row, which keeps the machine topology visible even in
/// a sparse trace.
pub fn export(records: &[Record], comps: &CompRegistry) -> String {
    let mut lines: Vec<String> = Vec::with_capacity(records.len() + comps.len() + 2);
    for (id, path) in comps.iter() {
        lines.push(format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            id.0,
            escape(path)
        ));
    }
    // Per-component stack of open span names, for orphan-E drop and
    // tail auto-close.
    let mut open: Vec<(CompId, Vec<&'static str>)> = Vec::new();
    let stack_of = |open: &mut Vec<(CompId, Vec<&'static str>)>, comp: CompId| {
        if let Some(i) = open.iter().position(|(c, _)| *c == comp) {
            i
        } else {
            open.push((comp, Vec::new()));
            open.len() - 1
        }
    };
    let mut max_ts = 0u64;
    for rec in records {
        max_ts = max_ts.max(rec.now);
        let tid = rec.comp.0;
        let ts = rec.now;
        match render_of(&rec.event) {
            Render::Begin { name, args } => {
                let i = stack_of(&mut open, rec.comp);
                open[i].1.push(name);
                let args = args.map_or(String::new(), |a| format!(",\"args\":{a}"));
                lines.push(format!(
                    "{{\"ph\":\"B\",\"name\":\"{name}\",\"pid\":0,\"tid\":{tid},\"ts\":{ts}{args}}}"
                ));
            }
            Render::End { name } => {
                let i = stack_of(&mut open, rec.comp);
                // Drop orphan ends (their begins fell off the ring).
                if open[i].1.last() == Some(&name) {
                    open[i].1.pop();
                    lines.push(format!(
                        "{{\"ph\":\"E\",\"name\":\"{name}\",\"pid\":0,\"tid\":{tid},\"ts\":{ts}}}"
                    ));
                }
            }
            Render::Instant { name, args } => {
                let args = args.map_or(String::new(), |a| format!(",\"args\":{a}"));
                lines.push(format!(
                    "{{\"ph\":\"i\",\"name\":\"{name}\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\
                     \"s\":\"t\"{args}}}"
                ));
            }
            Render::Complete { name, dur, args } => {
                let args = args.map_or(String::new(), |a| format!(",\"args\":{a}"));
                lines.push(format!(
                    "{{\"ph\":\"X\",\"name\":\"{name}\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\
                     \"dur\":{dur}{args}}}"
                ));
            }
        }
    }
    // Auto-close spans still open at the end of the recording.
    for (comp, stack) in &mut open {
        while let Some(name) = stack.pop() {
            lines.push(format!(
                "{{\"ph\":\"E\",\"name\":\"{name}\",\"pid\":0,\"tid\":{},\"ts\":{max_ts}}}",
                comp.0
            ));
        }
    }
    format!("{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ns\"}}\n", lines.join(",\n"))
}

/// Expected type of one `args` entry.
#[derive(Debug, Clone, Copy)]
enum ArgKind {
    Num,
    Str,
    Bool,
}

impl ArgKind {
    fn matches(self, v: &json::Value) -> bool {
        match self {
            ArgKind::Num => v.as_f64().is_some(),
            ArgKind::Str => v.as_str().is_some(),
            ArgKind::Bool => matches!(v, json::Value::Bool(_)),
        }
    }

    fn describe(self) -> &'static str {
        match self {
            ArgKind::Num => "number",
            ArgKind::Str => "string",
            ArgKind::Bool => "bool",
        }
    }
}

/// The `args` schema the exporter promises for each known event name and
/// phase, mirroring [`render_of`]. `E` events never carry args. Unknown
/// names (foreign traces run through the lint) are not checked.
fn required_args(name: &str, ph: &str) -> Option<&'static [(&'static str, ArgKind)]> {
    const NONE: &[(&str, ArgKind)] = &[];
    match (name, ph) {
        (_, "E") => Some(NONE),
        ("row_open", "B") => Some(&[("row", ArgKind::Num)]),
        ("barrier", "B") => Some(&[("phase", ArgKind::Num)]),
        ("refresh", "B") => Some(NONE),
        ("skip_window", "X") => Some(&[("delta", ArgKind::Num)]),
        ("simb_issue", "i") => Some(&[("pc", ArgKind::Num), ("category", ArgKind::Str)]),
        ("simb_stall", "i") => Some(&[("reason", ArgKind::Str)]),
        ("spad_access", "i") => Some(&[("spad", ArgKind::Str), ("count", ArgKind::Num)]),
        ("serdes_send", "i") => Some(&[("bytes", ArgKind::Num)]),
        ("flit_hop", "i") => Some(&[("delivered", ArgKind::Bool)]),
        ("burst_done", "i") => Some(&[("read", ArgKind::Bool)]),
        ("act" | "pre" | "rd" | "wr" | "ref" | "credit_stall", "i") => Some(NONE),
        _ => None,
    }
}

/// Validates that `text` is a well-formed Chrome trace document: parseable
/// JSON, a `traceEvents` array, non-decreasing timestamps in array order,
/// per thread stack-balanced `B`/`E` pairs with matching names, and — for
/// every event name this exporter produces — an `args` object carrying the
/// promised keys with the promised types (e.g. `simb_issue` must carry a
/// numeric `pc` and a string `category`).
///
/// # Errors
///
/// Returns a description of the first structural violation.
pub fn lint(text: &str) -> Result<LintReport, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(json::Value::as_array)
        .ok_or("missing traceEvents array")?;
    let mut report = LintReport { events: events.len(), ..LintReport::default() };
    let mut last_ts: Option<f64> = None;
    let mut stacks: Vec<(f64, Vec<String>)> = Vec::new(); // (tid, open names)
    for (i, ev) in events.iter().enumerate() {
        let ph = ev.get("ph").and_then(json::Value::as_str).ok_or(format!("event {i}: no ph"))?;
        if ph == "M" {
            continue;
        }
        let ts = ev.get("ts").and_then(json::Value::as_f64).ok_or(format!("event {i}: no ts"))?;
        if let Some(prev) = last_ts {
            if ts < prev {
                return Err(format!("event {i}: ts {ts} < previous {prev}"));
            }
        }
        last_ts = Some(ts);
        let tid =
            ev.get("tid").and_then(json::Value::as_f64).ok_or(format!("event {i}: no tid"))?;
        let name = ev
            .get("name")
            .and_then(json::Value::as_str)
            .ok_or(format!("event {i}: no name"))?
            .to_string();
        let si = match stacks.iter().position(|(t, _)| *t == tid) {
            Some(si) => si,
            None => {
                stacks.push((tid, Vec::new()));
                stacks.len() - 1
            }
        };
        if let Some(spec) = required_args(&name, ph) {
            for (key, kind) in spec {
                let v = ev
                    .get("args")
                    .and_then(|a| a.get(key))
                    .ok_or(format!("event {i}: {ph} \"{name}\" missing args.{key}"))?;
                if !kind.matches(v) {
                    return Err(format!(
                        "event {i}: {ph} \"{name}\" args.{key} is not a {}",
                        kind.describe()
                    ));
                }
            }
            report.args_checked += 1;
        }
        match ph {
            "B" => stacks[si].1.push(name),
            "E" => match stacks[si].1.pop() {
                Some(top) if top == name => report.spans += 1,
                Some(top) => {
                    return Err(format!("event {i}: E \"{name}\" closes B \"{top}\" (tid {tid})"))
                }
                None => return Err(format!("event {i}: E \"{name}\" without B (tid {tid})")),
            },
            "i" => report.instants += 1,
            "X" => {
                ev.get("dur")
                    .and_then(json::Value::as_f64)
                    .ok_or(format!("event {i}: X no dur"))?;
                report.completes += 1;
            }
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if let Some(name) = stack.last() {
            return Err(format!("unclosed B \"{name}\" on tid {tid}"));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DramCmdKind, SpadKind};

    fn reg() -> CompRegistry {
        let mut r = CompRegistry::default();
        r.register("cube0/vault0/core");
        r.register("cube0/vault0/pg0/bank0");
        r
    }

    fn rec(now: u64, comp: u32, event: TraceEvent) -> Record {
        Record { now, comp: CompId(comp), event }
    }

    #[test]
    fn export_passes_lint() {
        let records = vec![
            rec(0, 1, TraceEvent::DramCmd { kind: DramCmdKind::Act }),
            rec(0, 1, TraceEvent::RowOpen { row: 7 }),
            rec(5, 0, TraceEvent::SimbIssue { pc: 3, category: "computation" }),
            rec(6, 0, TraceEvent::SpadAccess { kind: SpadKind::Pgsm, count: 32 }),
            rec(9, 1, TraceEvent::DramCmd { kind: DramCmdKind::Pre }),
            rec(9, 1, TraceEvent::RowClose),
            rec(10, 0, TraceEvent::SkipWindow { delta: 40 }),
            rec(50, 0, TraceEvent::SimbStall { reason: "hazard" }),
        ];
        let text = export(&records, &reg());
        let report = lint(&text).expect("well-formed");
        // 2 metadata + 8 records.
        assert_eq!(report.events, 10);
        assert_eq!(report.spans, 1);
        assert_eq!(report.instants, 5);
        assert_eq!(report.completes, 1);
        // Every record renders a known name, so all eight args payloads
        // were schema-checked.
        assert_eq!(report.args_checked, 8);
        assert!(text.contains("\"thread_name\""));
        assert!(text.contains("cube0/vault0/pg0/bank0"));
        assert!(text.contains("\"pc\":3"));
        assert!(text.contains("\"delta\":40"));
    }

    #[test]
    fn lint_rejects_missing_or_mistyped_args() {
        let missing = r#"{"traceEvents":[
            {"ph":"i","name":"simb_issue","pid":0,"tid":0,"ts":1,"s":"t"}
        ]}"#;
        assert!(lint(missing).unwrap_err().contains("missing args.pc"));
        let mistyped = r#"{"traceEvents":[
            {"ph":"i","name":"simb_issue","pid":0,"tid":0,"ts":1,"s":"t",
             "args":{"pc":"three","category":"computation"}}
        ]}"#;
        assert!(lint(mistyped).unwrap_err().contains("args.pc is not a number"));
        let bad_bool = r#"{"traceEvents":[
            {"ph":"i","name":"flit_hop","pid":0,"tid":0,"ts":1,"s":"t","args":{"delivered":1}}
        ]}"#;
        assert!(lint(bad_bool).unwrap_err().contains("args.delivered is not a bool"));
        let bad_complete = r#"{"traceEvents":[
            {"ph":"X","name":"skip_window","pid":0,"tid":0,"ts":1,"dur":4}
        ]}"#;
        assert!(lint(bad_complete).unwrap_err().contains("missing args.delta"));
    }

    #[test]
    fn lint_skips_args_of_unknown_names() {
        let foreign = r#"{"traceEvents":[
            {"ph":"i","name":"not_ours","pid":0,"tid":0,"ts":1,"s":"t"}
        ]}"#;
        let report = lint(foreign).expect("unknown names are not schema-checked");
        assert_eq!(report.args_checked, 0);
        assert_eq!(report.instants, 1);
    }

    #[test]
    fn orphan_end_is_dropped_and_tail_begin_autoclosed() {
        // Simulates a ring that lost the head of the stream: an E with no B,
        // then a B with no E.
        let records = vec![
            rec(3, 1, TraceEvent::RowClose),
            rec(4, 1, TraceEvent::RowOpen { row: 1 }),
            rec(9, 0, TraceEvent::BarrierEnter { phase: 0 }),
        ];
        let text = export(&records, &reg());
        let report = lint(&text).expect("repaired trace must lint");
        assert_eq!(report.spans, 2, "both spans auto-closed");
    }

    #[test]
    fn nested_spans_close_in_order() {
        let records = vec![
            rec(1, 0, TraceEvent::RefreshBegin),
            rec(2, 0, TraceEvent::BarrierEnter { phase: 1 }),
            rec(3, 0, TraceEvent::BarrierRelease),
            rec(4, 0, TraceEvent::RefreshEnd),
        ];
        let report = lint(&export(&records, &reg())).expect("nested spans");
        assert_eq!(report.spans, 2);
    }

    #[test]
    fn lint_rejects_regressing_timestamps() {
        let bad = r#"{"traceEvents":[
            {"ph":"i","name":"a","pid":0,"tid":0,"ts":5,"s":"t"},
            {"ph":"i","name":"b","pid":0,"tid":0,"ts":4,"s":"t"}
        ]}"#;
        assert!(lint(bad).unwrap_err().contains("ts"));
    }

    #[test]
    fn lint_rejects_unbalanced_spans() {
        let unopened = r#"{"traceEvents":[{"ph":"E","name":"s","pid":0,"tid":0,"ts":1}]}"#;
        assert!(lint(unopened).unwrap_err().contains("without B"));
        let unclosed = r#"{"traceEvents":[{"ph":"B","name":"s","pid":0,"tid":0,"ts":1}]}"#;
        assert!(lint(unclosed).unwrap_err().contains("unclosed"));
        let crossed = r#"{"traceEvents":[
            {"ph":"B","name":"a","pid":0,"tid":0,"ts":1},
            {"ph":"E","name":"b","pid":0,"tid":0,"ts":2}
        ]}"#;
        assert!(lint(crossed).unwrap_err().contains("closes"));
    }

    #[test]
    fn lint_rejects_non_trace_json() {
        assert!(lint("not json").is_err());
        assert!(lint("{}").is_err());
        assert!(lint(r#"{"traceEvents":[{"name":"x"}]}"#).is_err());
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
