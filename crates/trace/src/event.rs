//! Event taxonomy and the component registry.
//!
//! Components are identified on the hot path by a dense [`CompId`]; the
//! id-to-path mapping ([`CompRegistry`]) is built once at attach time so an
//! emit site never formats a string.

/// Dense identifier of one instrumented component.
///
/// Ids are assigned by [`CompRegistry::register`] in deterministic
/// (machine-construction) order, so two identically configured runs assign
/// identical ids — the property the engine-equivalence tests rely on when
/// comparing raw event streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct CompId(pub u32);

/// Maps [`CompId`]s to hierarchical path strings such as
/// `cube0/vault0/pg3/bank1`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompRegistry {
    names: Vec<String>,
}

impl CompRegistry {
    /// Registers `path` and returns its id.
    pub fn register(&mut self, path: &str) -> CompId {
        let id = CompId(self.names.len() as u32);
        self.names.push(path.to_string());
        id
    }

    /// The path registered for `id`, or `"?"` for an unknown id.
    pub fn name(&self, id: CompId) -> &str {
        self.names.get(id.0 as usize).map_or("?", String::as_str)
    }

    /// Number of registered components.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no component has been registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, path)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (CompId, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (CompId(i as u32), n.as_str()))
    }
}

/// Kind of DRAM command issued to a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramCmdKind {
    /// Row activate.
    Act,
    /// Precharge.
    Pre,
    /// Column read.
    Rd,
    /// Column write.
    Wr,
    /// Refresh.
    Ref,
}

impl DramCmdKind {
    /// Short lowercase mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            DramCmdKind::Act => "act",
            DramCmdKind::Pre => "pre",
            DramCmdKind::Rd => "rd",
            DramCmdKind::Wr => "wr",
            DramCmdKind::Ref => "ref",
        }
    }
}

/// Which scratchpad an access touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpadKind {
    /// Process-group scratchpad.
    Pgsm,
    /// Vault scratchpad.
    Vsm,
}

impl SpadKind {
    /// Short lowercase mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            SpadKind::Pgsm => "pgsm",
            SpadKind::Vsm => "vsm",
        }
    }
}

/// One structured trace event.
///
/// Events are `Copy` and carry only small scalar payloads (labels are
/// `&'static str`), so recording one is a few machine words into the ring —
/// no allocation, no formatting. Stall and category labels are strings
/// rather than cross-crate enum types to keep `ipim-trace` a leaf crate
/// every simulator layer can depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A DRAM command issued to a bank (instant, bank component).
    DramCmd {
        /// Command kind.
        kind: DramCmdKind,
    },
    /// A row opened in a bank (span begin, bank component).
    RowOpen {
        /// Row index.
        row: u32,
    },
    /// The open row closed (span end, bank component).
    RowClose,
    /// A refresh sequence began (span begin, controller component).
    RefreshBegin,
    /// The refresh sequence finished (span end, controller component).
    RefreshEnd,
    /// A burst completed and data left the controller (instant, controller
    /// component).
    BurstDone {
        /// Whether the burst was a read.
        read: bool,
    },
    /// A flit traversed one hop (instant, router component).
    FlitHop {
        /// Whether the flit was ejected at its destination this hop.
        delivered: bool,
    },
    /// A flit wanted to move but the downstream queue was full (instant,
    /// router component).
    CreditStall,
    /// The control core issued the instruction at `pc` (instant, core
    /// component).
    SimbIssue {
        /// Program counter of the issued instruction.
        pc: u32,
        /// Table I category label of the instruction.
        category: &'static str,
    },
    /// The issue stage's stall classification *changed* to `reason`
    /// (instant, core component). Emission is edge-triggered — one event
    /// per transition, not per stalled cycle — which is what keeps legacy
    /// and skip-ahead event streams identical (a skipped window has a
    /// provably constant classification, so neither engine emits inside
    /// one).
    SimbStall {
        /// Stall reason label (see `ipim-arch`'s `StallReason`).
        reason: &'static str,
    },
    /// A scratchpad access (instant, core component).
    SpadAccess {
        /// Which scratchpad.
        kind: SpadKind,
        /// Accesses performed (one per active PE for SIMB ops).
        count: u32,
    },
    /// The control core parked at a `sync` barrier (span begin, core
    /// component).
    BarrierEnter {
        /// Barrier phase id.
        phase: u32,
    },
    /// The machine released this core from its barrier (span end, core
    /// component).
    BarrierRelease,
    /// Bytes crossed an inter-cube SERDES link (instant, serdes component).
    SerdesSend {
        /// Payload bytes serialized.
        bytes: u32,
    },
    /// The skip-ahead engine jumped a dead window of `delta` cycles
    /// (complete event with duration, engine component). Filtered out when
    /// comparing engines: it is the one event class the legacy engine can
    /// never produce.
    SkipWindow {
        /// Width of the jumped window in cycles.
        delta: u64,
    },
}

impl TraceEvent {
    /// Short name used as the Chrome trace event name.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::DramCmd { kind } => kind.name(),
            TraceEvent::RowOpen { .. } | TraceEvent::RowClose => "row_open",
            TraceEvent::RefreshBegin | TraceEvent::RefreshEnd => "refresh",
            TraceEvent::BurstDone { .. } => "burst_done",
            TraceEvent::FlitHop { .. } => "flit_hop",
            TraceEvent::CreditStall => "credit_stall",
            TraceEvent::SimbIssue { .. } => "simb_issue",
            TraceEvent::SimbStall { .. } => "simb_stall",
            TraceEvent::SpadAccess { kind, .. } => kind.name(),
            TraceEvent::BarrierEnter { .. } | TraceEvent::BarrierRelease => "barrier",
            TraceEvent::SerdesSend { .. } => "serdes_send",
            TraceEvent::SkipWindow { .. } => "skip_window",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_assigns_dense_ids_in_order() {
        let mut reg = CompRegistry::default();
        let a = reg.register("cube0/vault0/core");
        let b = reg.register("cube0/vault0/pg0/bank0");
        assert_eq!((a, b), (CompId(0), CompId(1)));
        assert_eq!(reg.name(a), "cube0/vault0/core");
        assert_eq!(reg.name(CompId(99)), "?");
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.iter().count(), 2);
    }

    #[test]
    fn event_names_are_stable() {
        assert_eq!(TraceEvent::DramCmd { kind: DramCmdKind::Act }.name(), "act");
        assert_eq!(TraceEvent::RowOpen { row: 3 }.name(), "row_open");
        assert_eq!(TraceEvent::RowClose.name(), "row_open");
        assert_eq!(TraceEvent::SpadAccess { kind: SpadKind::Vsm, count: 4 }.name(), "vsm");
        assert_eq!(TraceEvent::SkipWindow { delta: 12 }.name(), "skip_window");
    }
}
