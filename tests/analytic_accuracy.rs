//! Tier-1 accuracy gate for the analytic fast-forward engine.
//!
//! Every registered workload (Table II plus the NN and video families)
//! that compiles at {32², 64², 128²} is run through both the bit-exact
//! skip-ahead engine and the analytic tier, and the cycle divergence must
//! stay inside a *declared per-workload envelope*. The envelopes were set
//! from the calibration sweep recorded in `results/figures.jsonl`
//! (`analytic/divergence/*`) with roughly 1.5× headroom. The Table II
//! envelopes are all well under the 25% ceiling the model shipped
//! against; the NN/video kernels lean on the replicated-gather and
//! row-reduction paths the model was never calibrated for, so their
//! envelopes are declared wider (worst case Gemm at 45%). Tightening an
//! envelope is progress, loosening one needs a recalibration argument
//! (see DESIGN.md §11 and §13).
//!
//! The suite also pins the property the tuner actually relies on:
//! *rank preservation*. The analytic model must order the recorded
//! hand-vs-winner pairs from the PR 5/6 tuning sweeps the same way the
//! bit-exact engine did (Blur 128²: the 32×8+PGSM winner beat the hand
//! schedule 1.79×).

use ipim_core::analytic::divergence_pct;
use ipim_core::{
    all_workloads, workload_by_name, Engine, Fidelity, MachineConfig, ScheduleOverride, Session,
    WorkloadScale,
};

const MAX_CYCLES: u64 = 4_000_000_000;

/// Declared divergence envelope, percent, per workload. Calibrated
/// against the skip-ahead engine across 32²/64²/128² (the model's
/// dominant error terms — refresh displacement and drain-tail overlap —
/// scale differently per workload, so the envelopes do too).
fn envelope_pct(name: &str) -> f64 {
    match name {
        "Brighten" => 18.0,
        "Blur" => 10.0,
        "Downsample" => 12.0,
        "Upsample" => 10.0,
        "Shift" => 20.0,
        "Histogram" => 10.0,
        "BilateralGrid" => 20.0,
        "Interpolate" => 18.0,
        "LocalLaplacian" => 12.0,
        "StencilChain" => 8.0,
        // NN family: the replicated-gather path (Gemm's B operand,
        // Conv3x3's LUT) is the model's weakest spot — per-lane gathers
        // serialize in ways the closed form underestimates at scale.
        "Gemm" => 45.0,
        "Conv3x3" => 30.0,
        "RowSoftmax" => 22.0,
        // Video family.
        "FrameDelta" => 18.0,
        "TemporalBlur" => 38.0,
        "MotionEnergy" => 16.0,
        other => panic!("no declared envelope for workload {other:?}"),
    }
}

/// Runs the full Table II suite at `side`×`side` through both engines,
/// asserting the envelope per workload; returns how many workloads
/// actually compiled (small scales reject most static SIMB mappings).
fn check_scale(side: u32) -> usize {
    let skip =
        Session::new(MachineConfig { engine: Engine::SkipAhead, ..MachineConfig::vault_slice(1) });
    let analytic =
        Session::new(MachineConfig { engine: Engine::Analytic, ..MachineConfig::vault_slice(1) });
    let mut covered = 0;
    for w in all_workloads(WorkloadScale { width: side, height: side }) {
        let Ok(program) = skip.compile(&w.pipeline) else {
            continue; // not mappable at this scale — not an accuracy question
        };
        let s = skip.simulate(&program, &w.inputs, MAX_CYCLES).expect(w.name);
        let p = analytic.simulate(&program, &w.inputs, MAX_CYCLES).expect(w.name);
        assert_eq!(s.fidelity, Fidelity::BitExact);
        assert_eq!(p.fidelity, Fidelity::Approximate);
        let div = divergence_pct(p.report.cycles, s.report.cycles);
        assert!(
            div <= envelope_pct(w.name),
            "{} {side}x{side}: analytic {} vs skip-ahead {} cycles — {div:.2}% exceeds the \
             declared {:.0}% envelope",
            w.name,
            p.report.cycles,
            s.report.cycles,
            envelope_pct(w.name),
        );
        // The prediction must carry a full report, not just cycles: the
        // tuner and serve admission read issued/energy off it.
        assert_eq!(
            p.report.stats.issued, s.report.stats.issued,
            "{}: issue count is exact",
            w.name
        );
        assert!(p.report.energy.total_pj() > 0.0, "{}: energy model composed", w.name);
        covered += 1;
    }
    covered
}

#[test]
fn analytic_accuracy_32() {
    // Only Histogram and StencilChain of Table II map onto 32 PEs at this
    // scale; all six NN/video kernels do (their schedule ladders fall back
    // to finer tiles).
    assert_eq!(check_scale(32), 8);
}

#[test]
fn analytic_accuracy_64() {
    // Downsample / Interpolate / LocalLaplacian don't map at 64².
    assert_eq!(check_scale(64), 13);
}

#[test]
fn slow_analytic_accuracy_128() {
    // The full 16-workload suite compiles at the paper's scale.
    assert_eq!(check_scale(128), 16);
}

#[test]
fn analytic_preserves_recorded_tuning_ranks() {
    // PR 5's sweep found tile=32x8 + PGSM staging beating Blur's hand
    // schedule 1.79× at 128² (16272 → 9084 cycles, results/tuning.jsonl).
    // The analytic model must reproduce that order from the compiled
    // programs alone — this is the property the hill-climb short-list
    // stands on.
    let hand = workload_by_name("Blur", WorkloadScale { width: 128, height: 128 }).unwrap();
    let winner = hand
        .with_override(&ScheduleOverride {
            tile: Some((32, 8)),
            load_pgsm: Some(true),
            vectorize: Some(4),
            ..ScheduleOverride::default()
        })
        .expect("recorded winner override applies");
    let session =
        Session::new(MachineConfig { engine: Engine::Analytic, ..MachineConfig::vault_slice(1) });
    let hand_pred = session.run_workload(&hand, MAX_CYCLES).expect("hand");
    let win_pred = session.run_workload(&winner, MAX_CYCLES).expect("winner");
    assert!(
        win_pred.report.cycles < hand_pred.report.cycles,
        "analytic rank inversion: winner predicted {} vs hand {}",
        win_pred.report.cycles,
        hand_pred.report.cycles,
    );
}
