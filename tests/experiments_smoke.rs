//! Smoke tests over the experiment drivers: every figure/table generator
//! produces sane, paper-shaped data at reduced scale.

use ipim_core::experiments::{
    self, fig1, fig11, fig13, fig9, geomean, gpu_comparison, ExperimentConfig,
};

fn quick_suite() -> (ExperimentConfig, Vec<experiments::SuiteRun>) {
    let mut cfg = ExperimentConfig::quick();
    cfg.verify = false; // verified by tests/end_to_end.rs already
    let suite = experiments::run_suite(&cfg).expect("suite");
    (cfg, suite)
}

#[test]
fn fig1_profiles_have_the_bandwidth_bound_shape() {
    let rows = fig1();
    assert_eq!(rows.len(), 10);
    for r in &rows {
        assert!(r.dram_util >= 9.0 * r.alu_util, "{}: not bandwidth-bound", r.name);
    }
    let hist = rows.iter().find(|r| r.name == "Histogram").unwrap();
    assert!(hist.dram_util < 0.2, "histogram GPU schedule is anomalous");
}

#[test]
fn suite_wide_figures_have_paper_shapes() {
    let (cfg, suite) = quick_suite();
    assert_eq!(suite.len(), 10);

    // Fig. 6/7: iPIM wins on throughput and energy for the average.
    let cmp = gpu_comparison(&cfg, &suite);
    let mean_speedup = geomean(cmp.iter().map(|r| r.speedup));
    assert!(mean_speedup > 2.0, "mean speedup {mean_speedup} too low");
    // Histogram's parallel-partial-reduction schedule gives the largest
    // win (the paper's 43.78x outlier), and single-stage kernels beat the
    // pyramid pipelines.
    let speedup = |n: &str| cmp.iter().find(|r| r.name == n).unwrap().speedup;
    let max = cmp.iter().map(|r| r.speedup).fold(0.0f64, f64::max);
    assert_eq!(speedup("Histogram"), max, "histogram should lead");
    assert!(speedup("Brighten") > speedup("Interpolate"));
    assert!(speedup("Brighten") > speedup("LocalLaplacian"));
    let mean_saving: f64 = cmp.iter().map(|r| r.energy_saving).sum::<f64>() / cmp.len() as f64;
    assert!(mean_saving > 0.5, "mean energy saving {mean_saving}");

    // Fig. 9: most energy is spent on the PIM dies.
    for row in fig9(&suite) {
        assert!(
            row.pim_die_fraction > 0.5,
            "{}: pim-die fraction {}",
            row.name,
            row.pim_die_fraction
        );
        let sum =
            row.dram + row.simd + row.int_alu + row.addr_rf + row.data_rf + row.pgsm + row.others;
        assert!((sum - 1.0).abs() < 1e-6, "{}: fractions sum to {sum}", row.name);
    }

    // Fig. 11: index calculation is a large share; inter-vault is small.
    let inst = fig11(&suite);
    let mean_index: f64 = inst.iter().map(|r| r.index_calc).sum::<f64>() / inst.len() as f64;
    assert!(mean_index > 0.10, "mean index share {mean_index}");
    for r in &inst {
        assert!(r.inter_vault < 0.10, "{}: inter-vault share {}", r.name, r.inter_vault);
    }

    // Fig. 13: IPC is meaningfully below 1 but not degenerate.
    let ipc_rows = fig13(&cfg, &suite);
    let mean_ipc: f64 = ipc_rows.iter().map(|r| r.ipc).sum::<f64>() / ipc_rows.len() as f64;
    assert!(mean_ipc > 0.2 && mean_ipc < 1.0, "mean IPC {mean_ipc}");
}

#[test]
fn table4_area_matches_paper() {
    assert!((ipim_core::area::total_overhead_pct() - 10.71).abs() < 0.05);
    let ratio =
        ipim_core::area::naive_per_bank_core_overhead_pct() / ipim_core::area::total_overhead_pct();
    assert!(ratio > 10.0);
}

#[test]
fn thermal_power_fits_cooling() {
    let p = ipim_core::power::peak_power_per_cube(
        &ipim_core::MachineConfig::default(),
        &ipim_core::EnergyParams::default(),
    );
    assert!(p.fits_cooling(ipim_core::power::COMMODITY_COOLING_MW_PER_MM2));
}

#[test]
fn slice_scale_out_is_near_linear() {
    // The scale-out claim (DESIGN.md §2): vaults run lockstep SPMD, so a
    // 2-vault slice on the same image finishes in about half the cycles.
    use ipim_core::{workload_by_name, MachineConfig, Session, WorkloadScale};
    let scale = WorkloadScale { width: 128, height: 128 };
    let w = workload_by_name("Blur", scale).unwrap();
    let one = Session::new(MachineConfig::vault_slice(1))
        .run_workload(&w, 2_000_000_000)
        .expect("1 vault")
        .report
        .cycles as f64;
    let two = Session::new(MachineConfig::vault_slice(2))
        .run_workload(&w, 2_000_000_000)
        .expect("2 vaults")
        .report
        .cycles as f64;
    let ratio = one / two;
    assert!((1.6..=2.4).contains(&ratio), "2-vault slice should be ~2x faster, got {ratio:.2}x");
}
