//! Hermeticity guard: the dependency graph must contain only workspace
//! crates (see DESIGN.md §"Hermetic build policy" and the
//! `CARGO_NET_OFFLINE` setting in CI).
//!
//! The build is intentionally zero-dependency — every crate in
//! `cargo tree` must be one of ours (`ipim-*`). Anyone who reintroduces an
//! external crate gets this targeted failure instead of a CI job hanging
//! on a network fetch.

use std::process::Command;

#[test]
fn dependency_graph_is_workspace_only() {
    // Cargo exports its own path to test processes; fall back to PATH
    // lookup when running the binary directly.
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let out = Command::new(cargo)
        .args(["tree", "--workspace", "--edges", "normal,build", "--prefix", "none"])
        .current_dir(manifest_dir)
        .output()
        .expect("run cargo tree");
    assert!(out.status.success(), "cargo tree failed:\n{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).expect("cargo tree output is UTF-8");

    let mut offenders: Vec<&str> = text
        .lines()
        .filter_map(|line| line.split_whitespace().next())
        .filter(|name| !name.starts_with("ipim-"))
        .collect();
    offenders.sort_unstable();
    offenders.dedup();
    assert!(
        offenders.is_empty(),
        "non-workspace dependencies found (the build must stay hermetic): {offenders:?}"
    );

    // Sanity-check the parse actually saw the graph, so a silently empty
    // `cargo tree` can't green-wash the guard. `ipim-report` is the
    // newest leaf — its presence proves the guard walks the whole
    // workspace, report tier included.
    for crate_name in ["ipim-core", "ipim-shard", "ipim-report"] {
        assert!(
            text.lines().any(|l| l.starts_with(crate_name)),
            "cargo tree output did not mention {crate_name}:\n{text}"
        );
    }
}
