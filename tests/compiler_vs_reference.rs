//! Property-based cross-checks: randomly generated pipelines within the
//! supported subset always compile and match the reference interpreter.

use ipim_core::frontend::{x, y, Expr, Image, PipelineBuilder};
use ipim_core::{MachineConfig, Session};
use proptest::prelude::*;

/// A random elementwise/stencil expression over one input.
fn arb_stencil_expr() -> impl Strategy<Value = Vec<(i32, i32, f32)>> {
    // Up to 5 taps with offsets in [-2, 2] and small weights.
    proptest::collection::vec(((-2i32..=2), (-2i32..=2), 0.1f32..2.0), 1..5)
}

fn build_pipeline(taps: &[(i32, i32, f32)]) -> (ipim_core::frontend::Pipeline, Image) {
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 64, 64);
    let mut e: Option<Expr> = None;
    for (dx, dy, w) in taps {
        let term = input.at(x() + *dx, y() + *dy) * *w;
        e = Some(match e {
            None => term,
            Some(prev) => prev + term,
        });
    }
    let out = p.func("out", 64, 64);
    p.define(out, e.expect("at least one tap"));
    p.schedule(out).compute_root().ipim_tile(8, 8).load_pgsm().vectorize(4);
    (p.build(out).expect("valid pipeline"), Image::gradient(64, 64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_stencils_match_reference(taps in arb_stencil_expr()) {
        let (pipeline, img) = build_pipeline(&taps);
        let session = Session::new(MachineConfig::vault_slice(1));
        let input_src = pipeline.inputs()[0].source;
        let outcome = session
            .run_pipeline(&pipeline, &[(input_src, img.clone())], 500_000_000)
            .expect("run");
        let expected =
            ipim_core::frontend::interpret(&pipeline, &[img]).expect("reference");
        let diff = expected.max_abs_diff(&outcome.output);
        prop_assert!(diff <= 1e-3, "diverges by {diff} for taps {taps:?}");
    }

    #[test]
    fn random_affine_programs_are_deterministic(taps in arb_stencil_expr()) {
        let (pipeline, img) = build_pipeline(&taps);
        let session = Session::new(MachineConfig::vault_slice(1));
        let input_src = pipeline.inputs()[0].source;
        let a = session
            .run_pipeline(&pipeline, &[(input_src, img.clone())], 500_000_000)
            .expect("run");
        let b = session
            .run_pipeline(&pipeline, &[(input_src, img)], 500_000_000)
            .expect("run");
        prop_assert_eq!(a.report.cycles, b.report.cycles, "non-deterministic timing");
        prop_assert_eq!(a.output.max_abs_diff(&b.output), 0.0);
    }
}
