//! Property-based cross-checks: randomly generated pipelines within the
//! supported subset always compile and match the reference interpreter.

use ipim_core::frontend::{x, y, Expr, Image, PipelineBuilder};
use ipim_core::{MachineConfig, Session};
use ipim_simkit::check_with;
use ipim_simkit::prop::{f32_in, i32_in, tuple3, vec_of, Config, Gen};

type Tap = (i32, i32, f32);

/// A random elementwise/stencil expression over one input.
fn arb_stencil_expr() -> Gen<Vec<Tap>> {
    // Up to 5 taps with offsets in [-2, 2] and small weights.
    vec_of(tuple3(i32_in(-2, 3), i32_in(-2, 3), f32_in(0.1, 2.0)), 1, 5)
}

/// Cycle-accurate simulation dominates the cost of each case; run the
/// workspace-minimum 64 cases rather than the default-or-more.
fn config() -> Config {
    Config { cases: 64, ..Config::default() }
}

fn build_pipeline(taps: &[Tap]) -> (ipim_core::frontend::Pipeline, Image) {
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 64, 64);
    let mut e: Option<Expr> = None;
    for (dx, dy, w) in taps {
        let term = input.at(x() + *dx, y() + *dy) * *w;
        e = Some(match e {
            None => term,
            Some(prev) => prev + term,
        });
    }
    let out = p.func("out", 64, 64);
    p.define(out, e.expect("at least one tap"));
    p.schedule(out).compute_root().ipim_tile(8, 8).load_pgsm().vectorize(4);
    (p.build(out).expect("valid pipeline"), Image::gradient(64, 64))
}

#[test]
fn random_stencils_match_reference() {
    check_with(config(), "random_stencils_match_reference", &arb_stencil_expr(), |taps| {
        let (pipeline, img) = build_pipeline(taps);
        let session = Session::new(MachineConfig::vault_slice(1));
        let input_src = pipeline.inputs()[0].source;
        let outcome =
            session.run_pipeline(&pipeline, &[(input_src, img.clone())], 500_000_000).expect("run");
        let expected = ipim_core::frontend::interpret(&pipeline, &[img]).expect("reference");
        let diff = expected.max_abs_diff(&outcome.output);
        assert!(diff <= 1e-3, "diverges by {diff} for taps {taps:?}");
    });
}

#[test]
fn random_affine_programs_are_deterministic() {
    check_with(config(), "random_affine_programs_are_deterministic", &arb_stencil_expr(), |taps| {
        let (pipeline, img) = build_pipeline(taps);
        let session = Session::new(MachineConfig::vault_slice(1));
        let input_src = pipeline.inputs()[0].source;
        let a =
            session.run_pipeline(&pipeline, &[(input_src, img.clone())], 500_000_000).expect("run");
        let b = session.run_pipeline(&pipeline, &[(input_src, img)], 500_000_000).expect("run");
        assert_eq!(a.report.cycles, b.report.cycles, "non-deterministic timing");
        assert_eq!(a.output.max_abs_diff(&b.output), 0.0);
    });
}
