//! Cross-crate integration: every Table II workload compiles, runs on the
//! cycle-accurate slice, and matches the reference interpreter.

use ipim_core::experiments::verify_against_reference;
use ipim_core::{all_workloads, MachineConfig, Session, WorkloadScale};

/// Small scale keeps the full 10-benchmark sweep tractable in debug builds.
fn scale() -> WorkloadScale {
    WorkloadScale { width: 128, height: 128 }
}

#[test]
fn all_single_stage_workloads_run_and_verify() {
    let session = Session::new(MachineConfig::vault_slice(1));
    for w in all_workloads(scale()).into_iter().filter(|w| !w.multi_stage) {
        let outcome =
            session.run_workload(&w, 2_000_000_000).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        verify_against_reference(&w, &outcome);
        assert!(outcome.report.stats.issued > 0, "{}", w.name);
        assert!(outcome.report.energy.total_pj() > 0.0, "{}", w.name);
    }
}

#[test]
fn bilateral_grid_and_interpolate_run_and_verify() {
    let session = Session::new(MachineConfig::vault_slice(1));
    for name in ["BilateralGrid", "Interpolate"] {
        let w = ipim_core::workload_by_name(name, scale()).unwrap();
        let outcome =
            session.run_workload(&w, 2_000_000_000).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        verify_against_reference(&w, &outcome);
    }
}

#[test]
fn local_laplacian_runs_and_verifies() {
    let session = Session::new(MachineConfig::vault_slice(1));
    let w = ipim_core::workload_by_name("LocalLaplacian", scale()).unwrap();
    let outcome = session.run_workload(&w, 2_000_000_000).expect("run");
    verify_against_reference(&w, &outcome);
    assert_eq!(w.stages, 23);
}

#[test]
fn stencil_chain_runs_and_verifies() {
    let session = Session::new(MachineConfig::vault_slice(1));
    let w = ipim_core::workload_by_name("StencilChain", scale()).unwrap();
    let outcome = session.run_workload(&w, 4_000_000_000).expect("run");
    verify_against_reference(&w, &outcome);
    assert_eq!(w.stages, 32);
}

#[test]
fn histogram_runs_on_a_multi_vault_machine() {
    // Two vaults exercise the cross-vault all-gather (`req` + `sync`).
    let session = Session::new(MachineConfig::vault_slice(2));
    let w = ipim_core::workload_by_name("Histogram", scale()).unwrap();
    let outcome = session.run_workload(&w, 2_000_000_000).expect("run");
    verify_against_reference(&w, &outcome);
    assert!(outcome.report.stats.remote_reqs > 0);
    assert!(outcome.report.stats.by_category.synchronization >= 4);
    // Every pixel counted exactly once.
    let total: f32 = outcome.output.data().iter().sum();
    assert_eq!(total, scale().pixels() as f32);
}
