//! Cross-crate integration: every Table II workload compiles, runs on the
//! cycle-accurate slice, and matches the reference interpreter.
//!
//! These are the suite's slow cases (full 128×128 sweeps, tagged with the
//! `slow_` prefix); the fast pre-commit loop is `cargo test -q engine_`,
//! which runs only the engine-equivalence differential suite.

use ipim_core::experiments::verify_against_reference;
use ipim_core::{all_workloads, MachineConfig, RunOutcome, Session, Workload, WorkloadScale};

/// Small scale keeps the full 10-benchmark sweep tractable in debug builds.
fn scale() -> WorkloadScale {
    WorkloadScale { width: 128, height: 128 }
}

/// Runs `w` on a `vaults`-vault slice and checks it against the reference
/// interpreter, returning the outcome for test-specific assertions.
fn run_and_verify(w: &Workload, vaults: usize, max_cycles: u64) -> RunOutcome {
    let session = Session::new(MachineConfig::vault_slice(vaults));
    let outcome = session.run_workload(w, max_cycles).unwrap_or_else(|e| panic!("{}: {e}", w.name));
    verify_against_reference(w, &outcome);
    outcome
}

#[test]
fn slow_all_single_stage_workloads_run_and_verify() {
    for w in all_workloads(scale()).into_iter().filter(|w| !w.multi_stage) {
        let outcome = run_and_verify(&w, 1, 2_000_000_000);
        assert!(outcome.report.stats.issued > 0, "{}", w.name);
        assert!(outcome.report.energy.total_pj() > 0.0, "{}", w.name);
    }
}

#[test]
fn slow_bilateral_grid_and_interpolate_run_and_verify() {
    for name in ["BilateralGrid", "Interpolate"] {
        let w = ipim_core::workload_by_name(name, scale()).unwrap();
        run_and_verify(&w, 1, 2_000_000_000);
    }
}

#[test]
fn slow_local_laplacian_runs_and_verifies() {
    let w = ipim_core::workload_by_name("LocalLaplacian", scale()).unwrap();
    run_and_verify(&w, 1, 2_000_000_000);
    assert_eq!(w.stages, 23);
}

#[test]
fn slow_stencil_chain_runs_and_verifies() {
    let w = ipim_core::workload_by_name("StencilChain", scale()).unwrap();
    run_and_verify(&w, 1, 4_000_000_000);
    assert_eq!(w.stages, 32);
}

#[test]
fn slow_histogram_runs_on_a_multi_vault_machine() {
    // Two vaults exercise the cross-vault all-gather (`req` + `sync`).
    let w = ipim_core::workload_by_name("Histogram", scale()).unwrap();
    let outcome = run_and_verify(&w, 2, 2_000_000_000);
    assert!(outcome.report.stats.remote_reqs > 0);
    assert!(outcome.report.stats.by_category.synchronization >= 4);
    // Every pixel counted exactly once.
    let total: f32 = outcome.output.data().iter().sum();
    assert_eq!(total, scale().pixels() as f32);
}
