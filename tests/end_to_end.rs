//! Cross-crate integration: every Table II workload compiles, runs on the
//! cycle-accurate slice, and matches the reference interpreter.
//!
//! The per-workload cases fan out across an `ipim-serve` worker pool —
//! each worker owns its (deliberately `!Send`) machines, only plain-data
//! requests/responses cross threads — and every pooled response is checked
//! two ways: against the reference interpreter, and (on at least one
//! workload) for exact `ExecutionReport` + output bit-equality with a
//! serial `Session::run_workload` on the same configuration.
//!
//! These are the suite's slow cases (full 128×128 sweeps, tagged with the
//! `slow_` prefix); the fast pre-commit loop is `cargo test -q engine_`,
//! which runs only the engine-equivalence differential suite.

use ipim_core::experiments::verify_output_against_reference;
use ipim_core::{all_workloads, workload_by_name, WorkloadScale};
use ipim_serve::{DoneResponse, PoolConfig, ServePool, SimRequest, SimResponse};

/// Small scale keeps the full 10-benchmark sweep tractable in debug builds.
fn scale() -> WorkloadScale {
    WorkloadScale { width: 128, height: 128 }
}

fn request(workload: &str, vaults: usize, max_cycles: u64) -> SimRequest {
    SimRequest { vaults, max_cycles, ..SimRequest::named(workload, scale().width, scale().height) }
}

/// Runs `requests` across a 4-worker pool and verifies each response's
/// output against the reference interpreter, returning the `Done` payloads
/// in request order for test-specific assertions.
fn pool_run_and_verify(requests: Vec<SimRequest>) -> Vec<DoneResponse> {
    // Unique requests per test, so the cache stays out of the picture.
    let pool = ServePool::start(&PoolConfig { workers: 4, queue_depth: 16, cache_capacity: 0 });
    let responses = pool.run_all(requests.iter().cloned());
    pool.shutdown();
    requests
        .iter()
        .zip(responses)
        .map(|(req, resp)| match resp {
            SimResponse::Done(done) => {
                let w = workload_by_name(&req.workload, scale())
                    .unwrap_or_else(|| panic!("{}: unknown workload", req.workload));
                verify_output_against_reference(&w, &done.output);
                *done
            }
            other => panic!("{}: expected Done, got {other:?}", req.workload),
        })
        .collect()
}

#[test]
fn slow_all_single_stage_workloads_run_and_verify() {
    let requests: Vec<SimRequest> = all_workloads(scale())
        .into_iter()
        .filter(|w| !w.multi_stage)
        .map(|w| request(w.name, 1, 2_000_000_000))
        .collect();
    for done in pool_run_and_verify(requests) {
        assert!(done.report.stats.issued > 0, "{}", done.workload);
        assert!(done.report.energy.total_pj() > 0.0, "{}", done.workload);
    }
}

#[test]
fn slow_multi_stage_workloads_run_and_verify() {
    // StencilChain (32 stages) gets the larger cycle budget it needs.
    let requests = vec![
        request("BilateralGrid", 1, 2_000_000_000),
        request("Interpolate", 1, 2_000_000_000),
        request("LocalLaplacian", 1, 2_000_000_000),
        request("StencilChain", 1, 4_000_000_000),
        // The NN/video families' multi-stage kernels reach the pool by the
        // same wire names the shard router uses; the reference check walks
        // the gather / row-reduction interpreter paths.
        request("Gemm", 1, 2_000_000_000),
        request("Conv3x3", 1, 2_000_000_000),
        request("RowSoftmax", 1, 2_000_000_000),
        request("MotionEnergy", 1, 2_000_000_000),
    ];
    pool_run_and_verify(requests);
    assert_eq!(workload_by_name("LocalLaplacian", scale()).unwrap().stages, 23);
    assert_eq!(workload_by_name("StencilChain", scale()).unwrap().stages, 32);
    assert_eq!(workload_by_name("Gemm", scale()).unwrap().stages, 8);
}

#[test]
fn slow_histogram_runs_on_a_multi_vault_machine() {
    // Two vaults exercise the cross-vault all-gather (`req` + `sync`).
    let done = pool_run_and_verify(vec![request("Histogram", 2, 2_000_000_000)]).remove(0);
    assert!(done.report.stats.remote_reqs > 0);
    assert!(done.report.stats.by_category.synchronization >= 4);
    // Every pixel counted exactly once.
    let total: f32 = done.output.data().iter().sum();
    assert_eq!(total, scale().pixels() as f32);
}

#[test]
fn slow_pooled_responses_are_bit_identical_to_serial_runs() {
    // The same request served through the pool and run serially on a
    // freshly instantiated session must agree exactly — every counter,
    // every f64 energy term, every output bit.
    for name in ["Blur", "Histogram"] {
        let req = request(name, 1, 2_000_000_000);
        let pool = ServePool::start(&PoolConfig { workers: 2, queue_depth: 4, cache_capacity: 0 });
        let pooled = pool.submit(req.clone()).wait();
        pool.shutdown();
        let (session, workload) = req.instantiate().unwrap_or_else(|e| panic!("{name}: {e}"));
        let serial = session
            .run_workload(&workload, req.max_cycles)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        match pooled {
            SimResponse::Done(done) => {
                assert_eq!(done.report, serial.report, "{name}: report mismatch");
                assert_eq!(done.output, serial.output, "{name}: output mismatch");
                assert_eq!(done.cycles, serial.report.cycles);
            }
            other => panic!("{name}: expected Done, got {other:?}"),
        }
    }
}
