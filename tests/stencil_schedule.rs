//! StencilChain small-size schedule regression.
//!
//! The hand schedule's fixed 16×16 tile was illegal below 128² (a 64×64
//! image yields only 16 tiles for 32 PEs, so the static SIMB masks cannot
//! cover the slice). The fallback ladder in `ipim_workloads::multi` now
//! prefers the tuner-found rectangular 16×8 tile (1.75× faster than the
//! square 8×8 fallback at 64×64, `ipim-tune` seed 0x1915) and keeps the
//! square ladder behind it for sizes where 16×8 is itself illegal. These
//! tests pin that choice: every small size must compile, 64×64 must get
//! the tuner schedule, and the rescheduled chain must still match the
//! reference interpreter bit-for-bit within tolerance.

use ipim_core::experiments::{output_divergence, REFERENCE_TOLERANCE};
use ipim_core::{workload_by_name, MachineConfig, Session, WorkloadScale};

fn chain(side: u32) -> ipim_core::Workload {
    workload_by_name("StencilChain", WorkloadScale { width: side, height: side })
        .expect("StencilChain is a Table II workload")
}

#[test]
fn stencil_chain_compiles_at_every_small_size() {
    let session = Session::new(MachineConfig::vault_slice(1));
    for side in [32u32, 64, 96, 128] {
        let w = chain(side);
        session
            .compile(&w.pipeline)
            .unwrap_or_else(|e| panic!("StencilChain {side}x{side} must compile: {e}"));
    }
}

#[test]
fn stencil_chain_64_uses_the_tuner_schedule() {
    // Every stage carries the tuner-found tile; 32×32 (where a 16×8 grid
    // has only 8 tiles) stays on the square fallback.
    assert!(chain(64).pipeline.schedule_summary().contains("tile=16x8 pgsm"));
    assert!(chain(96).pipeline.schedule_summary().contains("tile=4x4 pgsm"));
    assert!(chain(32).pipeline.schedule_summary().contains("tile=4x4 pgsm"));
    // 128² and above keep the pre-existing square ladder.
    assert!(chain(128).pipeline.schedule_summary().contains("tile=16x16 pgsm"));
}

#[test]
fn slow_stencil_chain_64_matches_reference() {
    let w = chain(64);
    let session = Session::new(MachineConfig::vault_slice(1));
    let outcome = session.run_workload(&w, 4_000_000_000).expect("StencilChain 64x64 runs");
    let diff = output_divergence(&w, &outcome.output);
    assert!(
        diff <= REFERENCE_TOLERANCE,
        "tuner schedule diverges from the reference interpreter by {diff}"
    );
}
