//! Differential test: the skip-ahead engine must be bit-identical to the
//! legacy per-cycle engine (see DESIGN.md §"Two-engine architecture").
//!
//! Every workload runs twice — once per engine — and the suite asserts the
//! observables agree exactly: wall-clock cycles, issued-instruction count,
//! the full stall/busy/access counter set, DRAM command counters, total
//! energy, and the output image bit-for-bit. Any divergence means a
//! `next_event` bound was unsound or a skipped window's accounting replay
//! drifted.
//!
//! All tests here are prefixed `engine_` so `cargo test -q engine_` runs
//! just this fast suite as a pre-commit loop.

use ipim_core::trace::{Record, TraceEvent};
use ipim_core::{Engine, MachineConfig, Session, TraceConfig, Workload, WorkloadScale};

/// 64×64 keeps each pair of runs comfortably sub-second in debug builds.
fn scale() -> WorkloadScale {
    WorkloadScale { width: 64, height: 64 }
}

fn config(engine: Engine, vaults: usize) -> MachineConfig {
    MachineConfig { engine, ..MachineConfig::vault_slice(vaults) }
}

/// Re-instantiates `w` at 128×128 for the resampling workloads whose tile
/// count at 64×64 falls below the 32 static SIMB lanes (a compiler limit,
/// not an engine concern).
fn at_supported_scale(w: Workload) -> Workload {
    let probe = Session::new(config(Engine::Legacy, 1));
    match probe.run_workload(&w, 1) {
        Err(e) if e.to_string().contains("unsupported") => {
            ipim_core::workload_by_name(w.name, WorkloadScale { width: 128, height: 128 })
                .expect("known workload")
        }
        _ => w,
    }
}

/// Runs `w` under both engines on a `vaults`-vault slice and asserts every
/// observable matches exactly.
fn assert_engines_agree(w: &Workload, vaults: usize) {
    let legacy = Session::new(config(Engine::Legacy, vaults))
        .run_workload(w, 2_000_000_000)
        .unwrap_or_else(|e| panic!("{} (legacy): {e}", w.name));
    let skip = Session::new(config(Engine::SkipAhead, vaults))
        .run_workload(w, 2_000_000_000)
        .unwrap_or_else(|e| panic!("{} (skip-ahead): {e}", w.name));

    let (l, s) = (&legacy.report, &skip.report);
    assert_eq!(l.cycles, s.cycles, "{}: cycles diverge", w.name);
    assert_eq!(l.stats.issued, s.stats.issued, "{}: issued diverge", w.name);
    assert_eq!(l.stats, s.stats, "{}: statistics diverge", w.name);
    assert_eq!(l.bank_stats, s.bank_stats, "{}: DRAM commands diverge", w.name);
    assert_eq!(
        format!("{:?}", l.locality),
        format!("{:?}", s.locality),
        "{}: row locality diverges",
        w.name
    );
    // Energy is a pure function of the counters, so exact equality (not an
    // epsilon) is the right assertion: any drift is a counter bug.
    assert_eq!(
        l.energy.total_pj().to_bits(),
        s.energy.total_pj().to_bits(),
        "{}: energy diverges ({} pJ vs {} pJ)",
        w.name,
        l.energy.total_pj(),
        s.energy.total_pj()
    );
    assert_eq!(legacy.output.data(), skip.output.data(), "{}: output buffers diverge", w.name);
}

/// Runs `w` under both engines with tracing enabled and asserts that the
/// metrics snapshots are identical and the event streams match record for
/// record once the skip-ahead engine's `SkipWindow` markers — the one event
/// class the legacy engine can never produce — are filtered out.
///
/// This is a much stronger claim than counter equality: it says the two
/// engines issue the same DRAM commands, route the same flits and classify
/// the same stalls *at the same cycle on the same component*.
fn assert_traces_agree(w: &Workload, vaults: usize) {
    let traced = |engine| MachineConfig {
        engine,
        trace: TraceConfig { enabled: true, ring_capacity: 1 << 20, ..TraceConfig::default() },
        ..MachineConfig::vault_slice(vaults)
    };
    let legacy = Session::new(traced(Engine::Legacy))
        .run_workload(w, 2_000_000_000)
        .unwrap_or_else(|e| panic!("{} (legacy, traced): {e}", w.name));
    let skip = Session::new(traced(Engine::SkipAhead))
        .run_workload(w, 2_000_000_000)
        .unwrap_or_else(|e| panic!("{} (skip-ahead, traced): {e}", w.name));

    assert_eq!(legacy.metrics, skip.metrics, "{}: metrics snapshots diverge", w.name);

    let lt = legacy.trace.as_ref().expect("legacy trace capture");
    let st = skip.trace.as_ref().expect("skip-ahead trace capture");
    assert_eq!(lt.dropped, 0, "{}: legacy ring overflowed; grow ring_capacity", w.name);
    assert_eq!(st.dropped, 0, "{}: skip-ahead ring overflowed; grow ring_capacity", w.name);
    assert_eq!(lt.components, st.components, "{}: component registries diverge", w.name);

    let is_skip_window = |r: &&Record| matches!(r.event, TraceEvent::SkipWindow { .. });
    assert!(
        !lt.records.iter().any(|r| is_skip_window(&r)),
        "{}: legacy engine emitted a SkipWindow event",
        w.name
    );
    let skip_filtered: Vec<&Record> = st.records.iter().filter(|r| !is_skip_window(r)).collect();
    assert_eq!(
        lt.records.len(),
        skip_filtered.len(),
        "{}: event counts diverge ({} legacy vs {} skip-ahead modulo SkipWindow)",
        w.name,
        lt.records.len(),
        skip_filtered.len()
    );
    for (i, (l, s)) in lt.records.iter().zip(&skip_filtered).enumerate() {
        assert_eq!(
            l,
            *s,
            "{}: event streams diverge at record {i} (component {:?})",
            w.name,
            lt.components.name(l.comp)
        );
    }
}

#[test]
fn engine_equivalence_single_stage_workloads() {
    for w in ipim_core::all_workloads(scale()).into_iter().filter(|w| !w.multi_stage) {
        assert_engines_agree(&at_supported_scale(w), 1);
    }
}

#[test]
fn engine_equivalence_new_family_multi_stage() {
    // The NN/video families' multi-stage kernels exercise engine paths
    // Table II never drives together: the replicated per-lane gather
    // (Gemm's B strip, Conv3x3's LUT), the one-tile-wide row-reduction
    // grid (Gemm, RowSoftmax) and cross-stage PGSM restaging
    // (MotionEnergy). The single-stage family members ride along in
    // `engine_equivalence_single_stage_workloads`.
    for name in ["Gemm", "Conv3x3", "RowSoftmax", "MotionEnergy"] {
        let w = ipim_core::workload_by_name(name, scale()).unwrap();
        assert_engines_agree(&w, 1);
    }
}

#[test]
fn engine_equivalence_bilateral_grid() {
    let w = ipim_core::workload_by_name("BilateralGrid", scale()).unwrap();
    assert_engines_agree(&w, 1);
}

#[test]
fn engine_equivalence_interpolate() {
    let w = ipim_core::workload_by_name("Interpolate", scale()).unwrap();
    assert_engines_agree(&at_supported_scale(w), 1);
}

#[test]
fn engine_equivalence_multi_vault_histogram() {
    // Two vaults exercise the cross-vault path: mesh flits, SERDES retries,
    // `req`/`sync` barriers — every machine-level `next_event` term.
    let w = ipim_core::workload_by_name("Histogram", scale()).unwrap();
    assert_engines_agree(&w, 2);
}

#[test]
fn engine_equivalence_base_die_placement() {
    // PonB placement exercises the TSV-blocked completion queue
    // (`ponb_wait`), which must force live ticks while draining.
    let w = ipim_core::workload_by_name("Blur", scale()).unwrap();
    for engine in [Engine::Legacy, Engine::SkipAhead] {
        let mut c = config(engine, 1);
        c.placement = ipim_core::Placement::BaseDie;
        // Just assert it runs; the cross-engine comparison follows.
        Session::new(c).run_workload(&w, 2_000_000_000).expect("ponb run");
    }
    let mut lc = config(Engine::Legacy, 1);
    lc.placement = ipim_core::Placement::BaseDie;
    let mut sc = config(Engine::SkipAhead, 1);
    sc.placement = ipim_core::Placement::BaseDie;
    let l = Session::new(lc).run_workload(&w, 2_000_000_000).expect("legacy ponb");
    let s = Session::new(sc).run_workload(&w, 2_000_000_000).expect("skip ponb");
    assert_eq!(l.report.cycles, s.report.cycles, "PonB cycles diverge");
    assert_eq!(l.report.stats, s.report.stats, "PonB stats diverge");
    assert_eq!(l.output.data(), s.output.data(), "PonB output diverges");
}

#[test]
fn engine_determinism_two_vault_histogram() {
    // Two identically configured runs must agree byte-for-byte: the
    // skip-ahead engine's event selection (min over vaults, meshes, SERDES)
    // must not introduce ordering nondeterminism. The Debug rendering of
    // the report covers every counter, including ones without PartialEq.
    let w = ipim_core::workload_by_name("Histogram", scale()).unwrap();
    let run = || {
        Session::new(config(Engine::SkipAhead, 2))
            .run_workload(&w, 2_000_000_000)
            .expect("histogram run")
    };
    let (a, b) = (run(), run());
    assert_eq!(
        format!("{:?}", a.report),
        format!("{:?}", b.report),
        "reports diverge across identical runs"
    );
    assert_eq!(a.output.data(), b.output.data(), "outputs diverge across identical runs");
}

#[test]
fn engine_trace_equivalence_blur() {
    // Single-vault Blur covers the DRAM, scratchpad and issue-stage event
    // sources end to end.
    let w = ipim_core::workload_by_name("Blur", scale()).unwrap();
    assert_traces_agree(&w, 1);
}

#[test]
fn engine_trace_equivalence_multi_vault_histogram() {
    // Two vaults add the mesh (FlitHop/CreditStall) and barrier
    // (BarrierEnter/BarrierRelease) event sources to the comparison.
    let w = ipim_core::workload_by_name("Histogram", scale()).unwrap();
    assert_traces_agree(&w, 2);
}

#[test]
fn engine_trace_equivalence_bilateral_grid() {
    // Multi-stage pipeline: distinct programs per stage reset and re-drive
    // the edge-triggered stall classifier between loads.
    let w = ipim_core::workload_by_name("BilateralGrid", scale()).unwrap();
    assert_traces_agree(&w, 1);
}

#[test]
fn engine_equivalence_refresh_disabled() {
    // With refresh off, `next_event` loses its periodic tREFI term and
    // windows get much longer — a different stress pattern for the bounds.
    let w = ipim_core::workload_by_name("Blur", scale()).unwrap();
    let mut lc = config(Engine::Legacy, 1);
    lc.refresh = false;
    let mut sc = config(Engine::SkipAhead, 1);
    sc.refresh = false;
    let l = Session::new(lc).run_workload(&w, 2_000_000_000).expect("legacy");
    let s = Session::new(sc).run_workload(&w, 2_000_000_000).expect("skip");
    assert_eq!(l.report.cycles, s.report.cycles, "refresh-off cycles diverge");
    assert_eq!(l.report.stats, s.report.stats, "refresh-off stats diverge");
    assert_eq!(l.output.data(), s.output.data(), "refresh-off output diverges");
}
