//! Compares the five compiler configurations of the paper's Fig. 12 on the
//! Blur benchmark, showing how register allocation, instruction reordering
//! and memory-order enforcement each contribute.
//!
//! Run with: `cargo run --release --example blur_pipeline`

use ipim_core::{workload_by_name, CompileOptions, MachineConfig, Session, WorkloadScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = WorkloadScale { width: 256, height: 256 };
    let w = workload_by_name("Blur", scale).expect("blur workload");

    let configs: [(&str, CompileOptions); 5] = [
        ("baseline1 (min RA, no reorder)", CompileOptions::baseline1()),
        ("baseline2 (min RA)", CompileOptions::baseline2()),
        ("baseline3 (no reorder)", CompileOptions::baseline3()),
        ("baseline4 (no mem order)", CompileOptions::baseline4()),
        ("opt (max RA + reorder + mem order)", CompileOptions::opt()),
    ];

    println!("== Compiler backend ablation on Blur ({}x{}) ==", scale.width, scale.height);
    let mut baseline_cycles = None;
    for (name, options) in configs {
        let session = Session::with_options(MachineConfig::vault_slice(1), options);
        let outcome = session.run_workload(&w, 2_000_000_000)?;
        let cycles = outcome.report.cycles;
        let base = *baseline_cycles.get_or_insert(cycles);
        println!(
            "{name:38} {cycles:>10} cycles  speedup {:>5.2}x  IPC {:.3}  stalls: hazard {} / queue {} / tsv {}",
            base as f64 / cycles as f64,
            outcome.report.stats.ipc(),
            outcome.report.stats.stalls.hazard,
            outcome.report.stats.stalls.queue_full,
            outcome.report.stats.stalls.tsv,
        );
    }
    Ok(())
}
