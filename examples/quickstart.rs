//! Quickstart: define an algorithm and an iPIM schedule, compile it, run it
//! on the cycle-accurate simulator, and inspect the result.
//!
//! Run with: `cargo run --release --example quickstart`

use ipim_core::frontend::{x, y, Image, PipelineBuilder};
use ipim_core::{MachineConfig, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Algorithm (pure, schedule-independent — the Halide philosophy) ---
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 256, 256);
    let blurx = p.func("blurx", 256, 256);
    p.define(blurx, (input.at(x() - 1, y()) + input.at(x(), y()) + input.at(x() + 1, y())) / 3.0);
    let out = p.func("out", 256, 256);
    p.define(out, (blurx.at(x(), y() - 1) + blurx.at(x(), y()) + blurx.at(x(), y() + 1)) / 3.0);

    // --- Schedule (paper Listing 1): tile over the PE hierarchy, stage
    //     tiles in the process-group scratchpad, vectorize by 4 lanes. ---
    p.schedule(out).compute_root().ipim_tile(8, 8).load_pgsm().vectorize(4);
    let pipeline = p.build(out)?;

    // --- Compile and run on a one-vault slice (32 near-bank PEs). ---
    let session = Session::new(MachineConfig::vault_slice(1));
    let img = Image::gradient(256, 256);
    let outcome = session.run_pipeline(&pipeline, &[(input.id(), img)], 1_000_000_000)?;

    println!("== iPIM quickstart: 3x3 separable blur on 256x256 ==");
    println!("static instructions : {}", outcome.compiled.static_instructions);
    println!("cycles              : {}", outcome.report.cycles);
    println!("IPC                 : {:.3}", outcome.report.stats.ipc());
    println!(
        "DRAM traffic        : {} accesses ({} bytes)",
        outcome.report.stats.dram_accesses,
        outcome.report.dram_bytes()
    );
    println!(
        "row-buffer locality : {} hits / {} misses / {} conflicts",
        outcome.report.locality.row_hits,
        outcome.report.locality.row_misses,
        outcome.report.locality.row_conflicts
    );
    println!("energy              : {:.2} µJ", outcome.report.energy.total_j() * 1e6);
    println!("energy per pixel    : {:.1} pJ", outcome.energy_pj_per_pixel());
    println!("throughput (slice)  : {:.2} Gpixel/s", outcome.pixels_per_second() / 1e9);
    println!("output[128,128]     : {:.4}", outcome.output.get(128, 128));
    Ok(())
}
