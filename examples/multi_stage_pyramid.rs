//! Runs the Interpolate benchmark — a 12-stage pyramid pipeline mixing
//! downsampling, upsampling, stencils and elementwise stages — and prints
//! the per-category instruction mix plus an energy breakdown, illustrating
//! how heterogeneous multi-stage pipelines map onto the SIMB ISA.
//!
//! Run with: `cargo run --release --example multi_stage_pyramid`

use ipim_core::{workload_by_name, MachineConfig, Session, WorkloadScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = WorkloadScale { width: 256, height: 256 };
    let w = workload_by_name("Interpolate", scale).expect("interpolate workload");
    println!("== {} ({} pipeline stages, {}x{}) ==", w.name, w.stages, scale.width, scale.height);

    let session = Session::new(MachineConfig::vault_slice(1));
    let outcome = session.run_workload(&w, 4_000_000_000)?;
    let stats = &outcome.report.stats;
    let cat = &stats.by_category;

    println!("cycles: {}   IPC: {:.3}", outcome.report.cycles, stats.ipc());
    println!("dynamic instruction mix:");
    println!("  computation     {:>6.2}%", 100.0 * cat.fraction(cat.computation));
    println!("  index calc      {:>6.2}%", 100.0 * cat.fraction(cat.index_calc));
    println!("  intra-vault mem {:>6.2}%", 100.0 * cat.fraction(cat.intra_vault));
    println!("  inter-vault     {:>6.2}%", 100.0 * cat.fraction(cat.inter_vault));
    println!("  control flow    {:>6.2}%", 100.0 * cat.fraction(cat.control_flow));
    println!("  sync            {:>6.2}%", 100.0 * cat.fraction(cat.synchronization));

    let e = &outcome.report.energy;
    let total = e.total_pj();
    println!("energy breakdown ({:.2} µJ total):", total * 1e-6);
    println!("  DRAM   {:>6.2}%", 100.0 * e.dram.total_pj() / total);
    println!("  SIMD   {:>6.2}%", 100.0 * e.simd_pj / total);
    println!("  IntALU {:>6.2}%", 100.0 * e.int_alu_pj / total);
    println!("  DataRF {:>6.2}%", 100.0 * e.data_rf_pj / total);
    println!("  AddrRF {:>6.2}%", 100.0 * e.addr_rf_pj / total);
    println!("  PGSM   {:>6.2}%", 100.0 * e.pgsm_pj / total);
    println!("  others {:>6.2}%", 100.0 * (e.pe_bus_pj + e.others_pj()) / total);
    println!("PIM-die energy fraction: {:.1}%", 100.0 * e.pim_die_fraction());
    Ok(())
}
