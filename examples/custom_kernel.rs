//! Writing a custom kernel with data-dependent gathers: a tone-mapping
//! curve applied through a lookup table — the SIMB ISA's `mov drf/arf`
//! flexible-indexing path in action.
//!
//! Run with: `cargo run --release --example custom_kernel`

use ipim_core::frontend::{x, y, Image, PipelineBuilder};
use ipim_core::{MachineConfig, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: u32 = 64; // LUT entries

    let mut p = PipelineBuilder::new();
    let input = p.input("in", 128, 128);
    let lut = p.input("tone_curve", N, 1);

    // Local contrast: blend each pixel with a LUT-remapped version of
    // itself, where the LUT index is the pixel's own value (a dynamic
    // gather the compiler lowers to per-lane mov/clamp/load sequences on a
    // bank-replicated buffer).
    let out = p.func("tonemapped", 128, 128);
    let v = input.at(x(), y());
    let remapped = lut.at((v.clone() * (N as f32 - 0.5)).cast_i32(), 0);
    p.define(out, v * 0.3 + remapped * 0.7);
    p.schedule(out).compute_root().ipim_tile(8, 8).vectorize(4);
    let pipeline = p.build(out)?;

    // An S-shaped tone curve.
    let mut curve = Image::new(N, 1);
    for i in 0..N {
        let t = i as f32 / (N - 1) as f32;
        curve.set(i, 0, t * t * (3.0 - 2.0 * t));
    }

    let session = Session::new(MachineConfig::vault_slice(1));
    let img = Image::gradient(128, 128);
    let outcome = session.run_pipeline(
        &pipeline,
        &[(input.id(), img.clone()), (lut.id(), curve)],
        500_000_000,
    )?;

    println!("== Custom kernel: LUT tone mapping (data-dependent gather) ==");
    println!("cycles          : {}", outcome.report.cycles);
    println!(
        "index calc share: {:.1}%",
        100.0
            * outcome
                .report
                .stats
                .by_category
                .fraction(outcome.report.stats.by_category.index_calc)
    );
    println!("AddrRF accesses : {}", outcome.report.stats.addr_rf_accesses);
    for (gx, gy) in [(0u32, 0u32), (64, 64), (127, 127)] {
        println!(
            "pixel ({gx:>3},{gy:>3}): {:.4} -> {:.4}",
            img.get(gx, gy),
            outcome.output.get(gx, gy)
        );
    }
    Ok(())
}
